// Package lockguard implements the kwlint analyzer that enforces
// //kw:guardedby annotations: a struct field carrying
//
//	//kw:guardedby(mu)
//
// (in its doc or trailing comment, with mu a sibling field of a sync
// mutex type) may only be accessed in functions that visibly take that
// mutex on the same object.
//
// The check is deliberately flow-insensitive and intra-procedural
// (DESIGN.md §7's concurrency contracts are structural, not temporal):
// an access to x.field is legal if, anywhere in the same function,
// x.mu.Lock() or x.mu.RLock() is called with the same root variable —
// ordering and unlock pairing are the race detector's job; the analyzer
// catches the access paths that never touch the mutex at all. Two
// structural escape hatches match how the repo builds these structs:
//
//   - constructor escape: accesses rooted at a variable the function
//     itself constructed (composite literal or new) need no lock — the
//     object is not yet shared;
//   - //kw:holds(mu) on a function declares "my caller holds mu", for
//     internal helpers called under the lock.
//
// Guard annotations are exported as facts on the field objects, so
// cross-package accesses to exported guarded fields are held to the same
// contract.
package lockguard

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"

	"contextrank/internal/analysis/kwutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "lockguard",
	Doc: "enforce //kw:guardedby(mu) field annotations\n\n" +
		"A field annotated //kw:guardedby(mu) may only be accessed in functions that call <root>.mu.Lock/RLock on the same root object, construct the object locally, or declare //kw:holds(mu).",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*guardedFact)(nil)},
	Run:       run,
}

// guardedFact records, on a field object, the name of the sibling mutex
// field that guards it.
type guardedFact struct {
	Mutex string
}

func (*guardedFact) AFact()           {}
func (f *guardedFact) String() string { return "guardedby(" + f.Mutex + ")" }

func run(pass *analysis.Pass) (interface{}, error) {
	sup := kwutil.NewSuppressor(pass, "lockguard")
	kwutil.ReportMalformed(pass, "lockguard", func(pos token.Pos, problem string) {
		pass.Reportf(pos, "%s", problem)
	})

	guarded := map[*types.Var]string{} // field -> sibling mutex name
	validPos := map[token.Pos]bool{}   // comment positions where guardedby/holds belong

	// Collect //kw:guardedby annotations from struct fields.
	for _, f := range pass.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			st, ok := n.(*ast.StructType)
			if !ok {
				return true
			}
			fieldNames := map[string]*types.Var{}
			for _, field := range st.Fields.List {
				for _, name := range field.Names {
					if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
						fieldNames[name.Name] = v
					}
				}
			}
			for _, field := range st.Fields.List {
				for _, cg := range []*ast.CommentGroup{field.Doc, field.Comment} {
					for _, d := range allDirectives(cg, "guardedby") {
						validPos[d.Pos] = true
						mu, ok := fieldNames[d.Arg]
						if !ok {
							pass.Reportf(d.Pos, "//kw:guardedby(%s): no sibling field named %s in this struct", d.Arg, d.Arg)
							continue
						}
						if !isMutex(mu.Type()) {
							pass.Reportf(d.Pos, "//kw:guardedby(%s): sibling field %s is not a sync.Mutex or sync.RWMutex", d.Arg, d.Arg)
							continue
						}
						for _, name := range field.Names {
							if v, ok := pass.TypesInfo.Defs[name].(*types.Var); ok {
								guarded[v] = d.Arg
								pass.ExportObjectFact(v, &guardedFact{Mutex: d.Arg})
							}
						}
					}
				}
			}
			return true
		})
	}

	// //kw:holds is valid on function declarations.
	holds := map[*ast.FuncDecl]map[string]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			for _, d := range allDirectives(fd.Doc, "holds") {
				validPos[d.Pos] = true
				if holds[fd] == nil {
					holds[fd] = map[string]bool{}
				}
				holds[fd][d.Arg] = true
			}
		}
	}

	// Anything else carrying these verbs is silently dead: report it.
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, st, _ := kwutil.ParseDirective(c)
				if st != kwutil.DirectiveOK {
					continue
				}
				if (d.Verb == "guardedby" || d.Verb == "holds") && !validPos[c.Pos()] {
					where := "a struct field"
					if d.Verb == "holds" {
						where = "a function declaration"
					}
					pass.Reportf(c.Pos(), "misplaced //kw:%s: it only takes effect on %s", d.Verb, where)
				}
			}
		}
	}

	// lookupGuard resolves a field object to its guard, local or imported.
	lookupGuard := func(v *types.Var) (string, bool) {
		if mu, ok := guarded[v]; ok {
			return mu, true
		}
		if v.Pkg() != nil && v.Pkg() != pass.Pkg {
			var f guardedFact
			if pass.ImportObjectFact(v, &f) {
				return f.Mutex, true
			}
		}
		return "", false
	}

	// Check every function body.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			checkFunc(pass, sup, fd, holds[fd], lookupGuard)
		}
	}

	sup.Finish()
	return nil, nil
}

// checkFunc verifies guarded-field accesses in one function.
func checkFunc(pass *analysis.Pass, sup *kwutil.Suppressor, fd *ast.FuncDecl, held map[string]bool, lookupGuard func(*types.Var) (string, bool)) {
	info := pass.TypesInfo

	type lockKey struct {
		root types.Object
		mu   string
	}
	locked := map[lockKey]bool{}
	constructed := map[types.Object]bool{}

	// Pass 1: collect lock calls and locally-constructed roots anywhere
	// in the function (flow-insensitive by design).
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			// <base>.<mu>.Lock() / RLock()
			outer, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr)
			if !ok || (outer.Sel.Name != "Lock" && outer.Sel.Name != "RLock") {
				return true
			}
			if !isMutexExpr(info, outer.X) {
				return true
			}
			switch mu := ast.Unparen(outer.X).(type) {
			case *ast.SelectorExpr:
				if r := rootObject(info, mu.X); r != nil {
					locked[lockKey{r, mu.Sel.Name}] = true
				}
			case *ast.Ident:
				// A bare mutex variable: lock by name with no root.
				locked[lockKey{nil, mu.Name}] = true
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				if !isConstruction(info, rhs) {
					continue
				}
				if id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						constructed[obj] = true
					}
				}
			}
		}
		return true
	})

	// Pass 2: check guarded accesses.
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		sel, ok := n.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		v, ok := info.Uses[sel.Sel].(*types.Var)
		if !ok || !v.IsField() {
			return true
		}
		mu, isGuarded := lookupGuard(v)
		if !isGuarded {
			return true
		}
		if held[mu] {
			return true
		}
		root := rootObject(info, sel.X)
		if root != nil && constructed[root] {
			return true
		}
		if locked[lockKey{root, mu}] || locked[lockKey{nil, mu}] {
			return true
		}
		sup.Reportf(sel.Sel.Pos(), "access to %s, guarded by %s, without %s.%s.Lock/RLock in this function; lock it, construct locally, or annotate //kw:holds(%s)", v.Name(), mu, exprString(sel.X), mu, mu)
		return true
	})
}

// allDirectives returns OK-parsed directives with the given verb from a
// comment group.
func allDirectives(cg *ast.CommentGroup, verb string) []kwutil.Directive {
	return kwutil.DocDirectives(cg, verb)
}

// isMutex reports whether t (possibly behind a pointer) is sync.Mutex or
// sync.RWMutex.
func isMutex(t types.Type) bool {
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return false
	}
	return kwutil.NamedIs(named, "sync", "Mutex") || kwutil.NamedIs(named, "sync", "RWMutex")
}

func isMutexExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(e)]
	return ok && tv.Type != nil && isMutex(tv.Type)
}

// rootObject unwinds selectors, indexing, dereferences, and address-of
// down to the base identifier's object ("s" in &s.shards[i].mu), or nil
// when the base is not a simple variable.
func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		case *ast.UnaryExpr:
			if x.Op != token.AND {
				return nil
			}
			e = x.X
		default:
			return nil
		}
	}
}

// isConstruction recognizes expressions that produce a not-yet-shared
// object: composite literals (optionally addressed) and new(T).
func isConstruction(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, isLit := ast.Unparen(x.X).(*ast.CompositeLit)
			return isLit
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, isB := info.ObjectOf(id).(*types.Builtin); isB && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}

// exprString renders a short path for diagnostics.
func exprString(e ast.Expr) string {
	switch x := ast.Unparen(e).(type) {
	case *ast.Ident:
		return x.Name
	case *ast.SelectorExpr:
		return exprString(x.X) + "." + x.Sel.Name
	case *ast.IndexExpr:
		return exprString(x.X) + "[…]"
	case *ast.StarExpr:
		return "*" + exprString(x.X)
	case *ast.UnaryExpr:
		return exprString(x.X)
	}
	return "x"
}
