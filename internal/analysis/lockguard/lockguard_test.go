package lockguard_test

import (
	"testing"

	"contextrank/internal/analysis/atest"
	"contextrank/internal/analysis/lockguard"
)

func TestLockguard(t *testing.T) {
	// lockguardfix exercises locked/unlocked access, constructor escape,
	// //kw:holds, wrong-root detection, and malformed guards;
	// lockfact/use proves the guard fact crosses package boundaries.
	atest.Run(t, "../testdata", lockguard.Analyzer,
		"lockguardfix",
		"lockfact/use",
	)
}
