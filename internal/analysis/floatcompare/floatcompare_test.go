package floatcompare_test

import (
	"testing"

	"contextrank/internal/analysis/atest"
	"contextrank/internal/analysis/floatcompare"
)

func TestFloatCompare(t *testing.T) {
	atest.Run(t, "../testdata", floatcompare.Analyzer,
		"internal/eval",
		"notranking",
	)
}
