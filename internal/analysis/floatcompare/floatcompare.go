// Package floatcompare implements the kwlint analyzer that polices float
// equality in the ranking and evaluation code.
//
// The paper's ranking produces float64 scores, and ties between scores
// must go through the documented tie-breaking rule (stable order on the
// tied keys), not through `a == b` — which is both numerically fragile
// after reordered summation and a silent source of nondeterminism when
// the comparison feeds a sort.
//
// The rule: `==` and `!=` between two non-constant floating-point
// operands is flagged inside the -packages scope. Comparing against a
// constant (`if total == 0`) is a guard, not a tie decision, and stays
// legal. _test.go files are NOT exempt: a test asserting exact equality
// on a computed score breaks on any legitimate summation reorder;
// deliberate bit-exactness assertions carry a reasoned //kwlint:ignore.
package floatcompare

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"contextrank/internal/analysis/kwutil"
)

// DefaultPackages is the ranking/eval scope where score ties are
// governed by the paper's tie-breaking rule.
const DefaultPackages = "internal/core,internal/eval,internal/relevance,internal/ranksvm,internal/online,internal/features"

var scope = kwutil.NewScope(DefaultPackages)

var Analyzer = &analysis.Analyzer{
	Name: "floatcompare",
	Doc: "flag ==/!= between non-constant float64 score values in ranking/eval code\n\n" +
		"Score ties must go through the tie-breaking rule (stable key order), not exact float equality.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.Var(scope, "packages", "comma-separated import-path suffixes to check")
}

func run(pass *analysis.Pass) (interface{}, error) {
	sup := kwutil.NewSuppressor(pass, "floatcompare")
	defer sup.Finish()
	if !scope.InScope(pass) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.BinaryExpr)(nil)}, func(n ast.Node) {
		be := n.(*ast.BinaryExpr)
		if be.Op != token.EQL && be.Op != token.NEQ {
			return
		}
		x, okx := pass.TypesInfo.Types[be.X]
		y, oky := pass.TypesInfo.Types[be.Y]
		if !okx || !oky || !isFloat(x.Type) || !isFloat(y.Type) {
			return
		}
		// A constant operand makes this a guard (x == 0, x != initSentinel),
		// not a tie comparison between two computed scores.
		if x.Value != nil || y.Value != nil {
			return
		}
		sup.Reportf(be.OpPos, "%s between two computed floats; score ties must use the tie-breaking rule (or an epsilon), not exact equality", be.Op)
	})

	return nil, nil
}

func isFloat(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsFloat != 0
}
