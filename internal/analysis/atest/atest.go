// Package atest is a self-contained analysistest equivalent: it runs a
// go/analysis analyzer over source fixtures and checks the diagnostics
// against "// want" comments.
//
// The upstream golang.org/x/tools/go/analysis/analysistest package drags
// in go/packages and friends, which this repo deliberately does not
// vendor; the subset of behavior the kwlint tests need — load fixture
// packages, typecheck them against the standard library, run the
// analyzer and its Requires closure, diff diagnostics against
// expectations — fits in this package.
//
// Fixture layout mirrors analysistest: <testdata>/src/<importpath>/*.go,
// where <importpath> doubles as the fixture package's import path (so a
// fixture under src/internal/serve/ is analyzed as package path
// "internal/serve", which is what the scoped kwlint analyzers match on).
// A fixture may import another fixture by its path ("fixdep/lib"); the
// dependency is loaded from the same tree, analyzed first, and any facts
// the analyzer exports on its objects are visible when the importing
// fixture is analyzed — exactly the unitchecker fact flow, in memory.
//
// Expectation syntax, on the line the diagnostic is reported:
//
//	x := rand.Intn(5) // want `global math/rand`
//	a == b            // want "exact equality" `second expectation`
//
// Each quoted chunk is a regexp that must match the message of exactly
// one diagnostic on that line, and every diagnostic must be claimed by
// an expectation. Want comments in dependency fixtures are checked too.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"reflect"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each fixture package under root/src and applies the analyzer,
// comparing diagnostics against the fixtures' want comments (including
// want comments in any fixture dependencies pulled in by imports).
func Run(t *testing.T, root string, a *analysis.Analyzer, fixturePaths ...string) {
	t.Helper()
	for _, path := range fixturePaths {
		t.Run(strings.ReplaceAll(path, "/", "_"), func(t *testing.T) {
			t.Helper()
			res, err := Analyze(root, a, path)
			if err != nil {
				t.Fatal(err)
			}
			checkExpectations(t, res.Fset, res.Files, res.Diagnostics)
		})
	}
}

// Result is the outcome of analyzing one fixture package (plus its
// fixture dependencies, analyzed first for fact propagation).
type Result struct {
	Fset *token.FileSet
	// Files are all files of all loaded fixture packages, dependencies
	// first.
	Files []*ast.File
	// Diagnostics are the analyzer's reports across all loaded fixture
	// packages, in analysis order.
	Diagnostics []analysis.Diagnostic
}

// Analyze loads the fixture package at root/src/<pkgPath>, analyzes its
// fixture dependencies (for facts), then the package itself, and returns
// everything reported. It is the plumbing under Run, exported so tests
// can assert on raw diagnostics (e.g. the contract meta-test, which
// strips an annotation from a fixture copy and wants proof the suite
// notices).
func Analyze(root string, a *analysis.Analyzer, pkgPath string) (*Result, error) {
	l := &loader{
		root:     root,
		analyzer: a,
		fset:     token.NewFileSet(),
		pkgs:     map[string]*types.Package{},
		loading:  map[string]bool{},
		objFacts: map[objFactKey]analysis.Fact{},
		pkgFacts: map[pkgFactKey]analysis.Fact{},
	}
	if err := l.load(pkgPath); err != nil {
		return nil, err
	}
	return &Result{Fset: l.fset, Files: l.allFiles, Diagnostics: l.diags}, nil
}

// loader loads and analyzes fixture packages in dependency order,
// carrying analyzer facts across packages in memory.
type loader struct {
	root     string
	analyzer *analysis.Analyzer
	fset     *token.FileSet
	pkgs     map[string]*types.Package // loaded fixture packages by path
	loading  map[string]bool           // cycle guard
	allFiles []*ast.File
	diags    []analysis.Diagnostic
	objFacts map[objFactKey]analysis.Fact
	pkgFacts map[pkgFactKey]analysis.Fact
}

type objFactKey struct {
	obj types.Object
	typ reflect.Type
}

type pkgFactKey struct {
	pkg *types.Package
	typ reflect.Type
}

func (l *loader) load(pkgPath string) error {
	if _, done := l.pkgs[pkgPath]; done {
		return nil
	}
	if l.loading[pkgPath] {
		return fmt.Errorf("fixture import cycle through %s", pkgPath)
	}
	l.loading[pkgPath] = true
	defer delete(l.loading, pkgPath)

	dir := filepath.Join(l.root, "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		return fmt.Errorf("reading fixture dir: %w", err)
	}
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(l.fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			return fmt.Errorf("parsing fixture: %w", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		return fmt.Errorf("no fixture files in %s", dir)
	}

	// Analyze fixture dependencies first so their facts are in the store
	// when this package imports their objects.
	for _, f := range files {
		for _, imp := range f.Imports {
			path, err := strconv.Unquote(imp.Path.Value)
			if err != nil {
				continue
			}
			if st, err := os.Stat(filepath.Join(l.root, "src", filepath.FromSlash(path))); err == nil && st.IsDir() {
				if err := l.load(path); err != nil {
					return err
				}
			}
		}
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: &fixtureImporter{l: l, std: stdImporter(l.fset)}}
	pkg, err := conf.Check(pkgPath, l.fset, files, info)
	if err != nil {
		return fmt.Errorf("typechecking fixture %s: %v", pkgPath, err)
	}
	l.pkgs[pkgPath] = pkg
	l.allFiles = append(l.allFiles, files...)

	diags, err := l.runWithRequires(files, pkg, info)
	if err != nil {
		return err
	}
	l.diags = append(l.diags, diags...)
	return nil
}

// fixtureImporter resolves imports from the fixture tree first (reusing
// the packages the loader already typechecked) and falls back to
// standard-library export data.
type fixtureImporter struct {
	l   *loader
	std types.Importer
}

func (fi *fixtureImporter) Import(path string) (*types.Package, error) {
	if pkg, ok := fi.l.pkgs[path]; ok {
		return pkg, nil
	}
	return fi.std.Import(path)
}

// runWithRequires executes the analyzer's Requires closure in dependency
// order and then the analyzer itself, returning its diagnostics. Fact
// export/import is backed by the loader's in-memory store, so facts flow
// between fixture packages exactly as they do between build units under
// the real driver.
func (l *loader) runWithRequires(files []*ast.File, pkg *types.Package, info *types.Info) ([]analysis.Diagnostic, error) {
	var diags []analysis.Diagnostic
	results := map[*analysis.Analyzer]interface{}{}
	var run func(an *analysis.Analyzer) error
	run = func(an *analysis.Analyzer) error {
		if _, done := results[an]; done {
			return nil
		}
		for _, req := range an.Requires {
			if err := run(req); err != nil {
				return err
			}
		}
		pass := &analysis.Pass{
			Analyzer:   an,
			Fset:       l.fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				if an == l.analyzer { // dependency diagnostics are not under test
					diags = append(diags, d)
				}
			},
			ExportObjectFact: func(obj types.Object, fact analysis.Fact) {
				l.objFacts[objFactKey{obj, reflect.TypeOf(fact)}] = copyFact(fact)
			},
			ImportObjectFact: func(obj types.Object, fact analysis.Fact) bool {
				stored, ok := l.objFacts[objFactKey{obj, reflect.TypeOf(fact)}]
				if !ok {
					return false
				}
				reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
				return true
			},
			ExportPackageFact: func(fact analysis.Fact) {
				l.pkgFacts[pkgFactKey{pkg, reflect.TypeOf(fact)}] = copyFact(fact)
			},
			ImportPackageFact: func(p *types.Package, fact analysis.Fact) bool {
				stored, ok := l.pkgFacts[pkgFactKey{p, reflect.TypeOf(fact)}]
				if !ok {
					return false
				}
				reflect.ValueOf(fact).Elem().Set(reflect.ValueOf(stored).Elem())
				return true
			},
			AllObjectFacts: func() []analysis.ObjectFact {
				var out []analysis.ObjectFact
				for k, f := range l.objFacts {
					out = append(out, analysis.ObjectFact{Object: k.obj, Fact: f})
				}
				return out
			},
			AllPackageFacts: func() []analysis.PackageFact {
				var out []analysis.PackageFact
				for k, f := range l.pkgFacts {
					out = append(out, analysis.PackageFact{Package: k.pkg, Fact: f})
				}
				return out
			},
		}
		res, err := an.Run(pass)
		if err != nil {
			return fmt.Errorf("analyzer %s: %v", an.Name, err)
		}
		results[an] = res
		return nil
	}
	if err := run(l.analyzer); err != nil {
		return nil, err
	}
	return diags, nil
}

// copyFact clones a fact so later mutation by the exporting analyzer
// cannot corrupt the store (the real driver round-trips facts through
// gob; a shallow struct copy gives the same isolation for the flat fact
// types kwlint uses).
func copyFact(fact analysis.Fact) analysis.Fact {
	v := reflect.ValueOf(fact)
	if v.Kind() != reflect.Ptr {
		return fact
	}
	cp := reflect.New(v.Elem().Type())
	cp.Elem().Set(v.Elem())
	return cp.Interface().(analysis.Fact)
}

// expectation is one want regexp at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile("(?:`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\")")

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					pat := m[1]
					if pat == "" && m[2] != "" {
						unq, err := strconv.Unquote(`"` + m[2] + `"`)
						if err != nil {
							t.Fatalf("%s:%d: bad want string: %v", pos.Filename, pos.Line, err)
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		claimed := false
		for _, w := range wants {
			if !w.used && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// stdImporter returns a go/types importer that resolves standard-library
// imports from compiler export data, produced on demand by
// `go list -export`. This works offline and under the vendored build.
func stdImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", exportLookup)
}

var (
	exportMu    sync.Mutex
	exportFiles = map[string]string{}
)

// exportLookup locates the export data file for an import path. Results
// are cached process-wide; `go list -export -deps` is invoked once per
// new root so transitive imports are resolved in the same subprocess.
func exportLookup(path string) (io.ReadCloser, error) {
	exportMu.Lock()
	defer exportMu.Unlock()
	if f, ok := exportFiles[path]; ok {
		return os.Open(f)
	}
	out, err := exec.Command("go", "list", "-export", "-deps", "-f", "{{.ImportPath}}={{.Export}}", path).Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok {
			msg = string(ee.Stderr)
		}
		return nil, fmt.Errorf("go list -export %s: %s", path, msg)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		ip, file, ok := strings.Cut(line, "=")
		if ok && file != "" {
			exportFiles[ip] = file
		}
	}
	f, ok := exportFiles[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %s", path)
	}
	return os.Open(f)
}
