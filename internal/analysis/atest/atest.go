// Package atest is a self-contained analysistest equivalent: it runs a
// go/analysis analyzer over source fixtures and checks the diagnostics
// against "// want" comments.
//
// The upstream golang.org/x/tools/go/analysis/analysistest package drags
// in go/packages and friends, which this repo deliberately does not
// vendor; the subset of behavior the kwlint tests need — load one
// fixture package, typecheck it against the standard library, run the
// analyzer and its Requires closure, diff diagnostics against
// expectations — fits in this file.
//
// Fixture layout mirrors analysistest: <testdata>/src/<importpath>/*.go,
// where <importpath> doubles as the fixture package's import path (so a
// fixture under src/internal/serve/ is analyzed as package path
// "internal/serve", which is what the scoped kwlint analyzers match on).
//
// Expectation syntax, on the line the diagnostic is reported:
//
//	x := rand.Intn(5) // want `global math/rand`
//	a == b            // want "exact equality" `second expectation`
//
// Each quoted chunk is a regexp that must match the message of exactly
// one diagnostic on that line, and every diagnostic must be claimed by
// an expectation.
package atest

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/parser"
	"go/token"
	"go/types"
	"io"
	"os"
	"os/exec"
	"path/filepath"
	"regexp"
	"sort"
	"strconv"
	"strings"
	"sync"
	"testing"

	"golang.org/x/tools/go/analysis"
)

// Run loads each fixture package under root/src and applies the analyzer,
// comparing diagnostics against the fixtures' want comments.
func Run(t *testing.T, root string, a *analysis.Analyzer, fixturePaths ...string) {
	t.Helper()
	for _, path := range fixturePaths {
		t.Run(strings.ReplaceAll(path, "/", "_"), func(t *testing.T) {
			t.Helper()
			runOne(t, root, a, path)
		})
	}
}

func runOne(t *testing.T, root string, a *analysis.Analyzer, pkgPath string) {
	t.Helper()
	dir := filepath.Join(root, "src", filepath.FromSlash(pkgPath))
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatalf("reading fixture dir: %v", err)
	}

	fset := token.NewFileSet()
	var files []*ast.File
	for _, e := range entries {
		if e.IsDir() || !strings.HasSuffix(e.Name(), ".go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, e.Name()), nil, parser.ParseComments)
		if err != nil {
			t.Fatalf("parsing fixture: %v", err)
		}
		files = append(files, f)
	}
	if len(files) == 0 {
		t.Fatalf("no fixture files in %s", dir)
	}

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Implicits:  map[ast.Node]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Scopes:     map[ast.Node]*types.Scope{},
		Instances:  map[*ast.Ident]types.Instance{},
	}
	conf := types.Config{Importer: stdImporter(fset)}
	pkg, err := conf.Check(pkgPath, fset, files, info)
	if err != nil {
		t.Fatalf("typechecking fixture %s: %v", pkgPath, err)
	}

	diags := runWithRequires(t, a, fset, files, pkg, info)
	checkExpectations(t, fset, files, diags)
}

// runWithRequires executes the analyzer's Requires closure in dependency
// order and then the analyzer itself, returning its diagnostics.
func runWithRequires(t *testing.T, a *analysis.Analyzer, fset *token.FileSet, files []*ast.File, pkg *types.Package, info *types.Info) []analysis.Diagnostic {
	t.Helper()
	var diags []analysis.Diagnostic
	results := map[*analysis.Analyzer]interface{}{}
	var run func(an *analysis.Analyzer)
	run = func(an *analysis.Analyzer) {
		if _, done := results[an]; done {
			return
		}
		for _, req := range an.Requires {
			run(req)
		}
		pass := &analysis.Pass{
			Analyzer:   an,
			Fset:       fset,
			Files:      files,
			Pkg:        pkg,
			TypesInfo:  info,
			TypesSizes: types.SizesFor("gc", "amd64"),
			ResultOf:   results,
			ReadFile:   os.ReadFile,
			Report: func(d analysis.Diagnostic) {
				if an == a { // dependency diagnostics are not under test
					diags = append(diags, d)
				}
			},
		}
		res, err := an.Run(pass)
		if err != nil {
			t.Fatalf("analyzer %s: %v", an.Name, err)
		}
		results[an] = res
	}
	run(a)
	return diags
}

// expectation is one want regexp at a file line.
type expectation struct {
	file string
	line int
	re   *regexp.Regexp
	used bool
}

var wantRE = regexp.MustCompile("(?:`([^`]*)`|\"((?:[^\"\\\\]|\\\\.)*)\")")

func checkExpectations(t *testing.T, fset *token.FileSet, files []*ast.File, diags []analysis.Diagnostic) {
	t.Helper()
	var wants []*expectation
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := c.Text
				idx := strings.Index(text, "want ")
				if idx < 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, m := range wantRE.FindAllStringSubmatch(text[idx+len("want "):], -1) {
					pat := m[1]
					if pat == "" && m[2] != "" {
						unq, err := strconv.Unquote(`"` + m[2] + `"`)
						if err != nil {
							t.Fatalf("%s:%d: bad want string: %v", pos.Filename, pos.Line, err)
						}
						pat = unq
					}
					re, err := regexp.Compile(pat)
					if err != nil {
						t.Fatalf("%s:%d: bad want regexp %q: %v", pos.Filename, pos.Line, pat, err)
					}
					wants = append(wants, &expectation{file: pos.Filename, line: pos.Line, re: re})
				}
			}
		}
	}

	for _, d := range diags {
		pos := fset.Position(d.Pos)
		claimed := false
		for _, w := range wants {
			if !w.used && w.file == pos.Filename && w.line == pos.Line && w.re.MatchString(d.Message) {
				w.used = true
				claimed = true
				break
			}
		}
		if !claimed {
			t.Errorf("%s:%d: unexpected diagnostic: %s", pos.Filename, pos.Line, d.Message)
		}
	}
	sort.Slice(wants, func(i, j int) bool {
		if wants[i].file != wants[j].file {
			return wants[i].file < wants[j].file
		}
		return wants[i].line < wants[j].line
	})
	for _, w := range wants {
		if !w.used {
			t.Errorf("%s:%d: expected diagnostic matching %q, got none", w.file, w.line, w.re)
		}
	}
}

// stdImporter returns a go/types importer that resolves standard-library
// imports from compiler export data, produced on demand by
// `go list -export`. This works offline and under the vendored build.
func stdImporter(fset *token.FileSet) types.Importer {
	return importer.ForCompiler(fset, "gc", exportLookup)
}

var (
	exportMu    sync.Mutex
	exportFiles = map[string]string{}
)

// exportLookup locates the export data file for an import path. Results
// are cached process-wide; `go list -export -deps` is invoked once per
// new root so transitive imports are resolved in the same subprocess.
func exportLookup(path string) (io.ReadCloser, error) {
	exportMu.Lock()
	defer exportMu.Unlock()
	if f, ok := exportFiles[path]; ok {
		return os.Open(f)
	}
	out, err := exec.Command("go", "list", "-export", "-deps", "-f", "{{.ImportPath}}={{.Export}}", path).Output()
	if err != nil {
		msg := err.Error()
		if ee, ok := err.(*exec.ExitError); ok {
			msg = string(ee.Stderr)
		}
		return nil, fmt.Errorf("go list -export %s: %s", path, msg)
	}
	for _, line := range strings.Split(strings.TrimSpace(string(out)), "\n") {
		ip, file, ok := strings.Cut(line, "=")
		if ok && file != "" {
			exportFiles[ip] = file
		}
	}
	f, ok := exportFiles[path]
	if !ok {
		return nil, fmt.Errorf("no export data for %s", path)
	}
	return os.Open(f)
}
