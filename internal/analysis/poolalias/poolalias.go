// Package poolalias implements the kwlint analyzer that enforces the
// pooled-scratch aliasing contract of DESIGN.md §10: memory obtained
// from a sync.Pool may not alias anything a function returns.
//
// The detect/framework/searchsim hot paths rent scratch buffers from
// pools and put them back on exit; a result slice that still points into
// the scratch is corrupted by the next request that rents it. The
// runtime makes this bug intermittent; the analyzer makes it a report.
//
// The check is an intra-procedural taint walk. Taint sources are calls
// to (sync.Pool).Get and calls to functions known to hand out the pooled
// object (see below). Taint flows through assignments, field/index/slice
// projections, type assertions, and calls that receive a tainted
// argument. Returning a tainted value is the sink — with one deliberate
// carve-out per level:
//
//   - returning the pooled object itself (the root) is the accessor
//     pattern (getScratch/putScratch): ownership transfers whole, and
//     the function is recorded in an exported fact so its callers' taint
//     starts where it left off — across packages;
//   - returning a projection or derivative of the root is the bug.
//
// Functions annotated //kw:fresh declare "my result never aliases my
// inputs or pooled state" (detect.resolveCollisions documents exactly
// this); their call results are untainted, and the assertion travels as
// a fact. Parameters are never taint sources: a function handed scratch
// by its caller is the caller's responsibility (searchsim.phraseHits
// returns a view into the scratch it was given — legal; its callers hold
// the taint).
package poolalias

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"

	"contextrank/internal/analysis/kwutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "poolalias",
	Doc: "forbid returning values that alias sync.Pool-managed scratch\n\n" +
		"Taint-tracks (sync.Pool).Get results through a function body; returning a projection of pooled memory is a report. Returning the pooled object whole is the accessor pattern and is recorded as a fact for callers. //kw:fresh asserts a function's result is freshly allocated.",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*pooledFact)(nil), (*freshFact)(nil)},
	Run:       run,
}

// pooledFact marks a function that returns the pooled object itself
// (a pool accessor): its results carry root taint at every call site.
type pooledFact struct{}

func (*pooledFact) AFact()         {}
func (*pooledFact) String() string { return "returnsPooled" }

// freshFact carries a //kw:fresh annotation across packages.
type freshFact struct{}

func (*freshFact) AFact()         {}
func (*freshFact) String() string { return "fresh" }

// Taint levels.
const (
	notTainted = iota
	derived    // aliases some part of pooled memory
	root       // is the pooled object itself
)

func run(pass *analysis.Pass) (interface{}, error) {
	sup := kwutil.NewSuppressor(pass, "poolalias")
	kwutil.ReportMalformed(pass, "poolalias", func(pos token.Pos, problem string) {
		pass.Reportf(pos, "%s", problem)
	})

	var (
		decls  []*ast.FuncDecl
		fnOf   = map[*ast.FuncDecl]*types.Func{}
		fresh  = map[*types.Func]bool{}
		docPos = map[token.Pos]bool{}
	)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			decls = append(decls, fd)
			fnOf[fd] = fn
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					docPos[c.Pos()] = true
				}
			}
			if kwutil.HasDirective(fd.Doc, "fresh") {
				fresh[fn] = true
				pass.ExportObjectFact(fn, &freshFact{})
			}
		}
	}
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, st, _ := kwutil.ParseDirective(c)
				if st == kwutil.DirectiveOK && d.Verb == "fresh" && !docPos[c.Pos()] {
					pass.Reportf(c.Pos(), "misplaced //kw:fresh: it only takes effect in the doc comment of a function declaration")
				}
			}
		}
	}

	// Fixpoint over local accessors: a function returning the root of
	// another local accessor's result is itself an accessor.
	tw := &taintWalker{pass: pass, fresh: fresh, pooled: map[*types.Func]bool{}}
	for changed := true; changed; {
		changed = false
		for _, fd := range decls {
			fn := fnOf[fd]
			if fd.Body == nil || tw.pooled[fn] {
				continue
			}
			if tw.analyze(fd, nil) {
				tw.pooled[fn] = true
				changed = true
			}
		}
	}
	for fn := range tw.pooled {
		pass.ExportObjectFact(fn, &pooledFact{})
	}

	// Reporting pass, with the accessor set complete.
	for _, fd := range decls {
		if fd.Body == nil {
			continue
		}
		tw.analyze(fd, sup)
	}

	sup.Finish()
	return nil, nil
}

type taintWalker struct {
	pass   *analysis.Pass
	fresh  map[*types.Func]bool
	pooled map[*types.Func]bool
}

// analyze taint-walks one function. With sup == nil it only answers
// "does this function return the pooled root" (the accessor fixpoint);
// with sup set it reports derived-taint returns.
func (w *taintWalker) analyze(fd *ast.FuncDecl, sup *kwutil.Suppressor) (returnsRoot bool) {
	info := w.pass.TypesInfo
	taint := map[types.Object]int{}

	// Named results, for naked returns.
	var namedResults []types.Object
	if fd.Type.Results != nil {
		for _, field := range fd.Type.Results.List {
			for _, name := range field.Names {
				if obj := info.ObjectOf(name); obj != nil {
					namedResults = append(namedResults, obj)
				}
			}
		}
	}

	setObj := func(e ast.Expr, lvl int) bool {
		id, ok := ast.Unparen(e).(*ast.Ident)
		if !ok {
			return false
		}
		obj := info.ObjectOf(id)
		if obj == nil {
			return false
		}
		if taint[obj] < lvl {
			taint[obj] = lvl
			return true
		}
		return false
	}

	// Propagate through assignments until stable (bounded: taint only
	// grows, over finitely many objects).
	for pass, changed := 0, true; changed && pass < 16; pass++ {
		changed = false
		ast.Inspect(fd, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.AssignStmt:
				if len(n.Lhs) == len(n.Rhs) {
					for i := range n.Lhs {
						if lvl := w.exprTaint(taint, n.Rhs[i]); lvl != notTainted && setObj(n.Lhs[i], lvl) {
							changed = true
						}
					}
				} else if len(n.Rhs) == 1 { // x, ok := v.(T) and multi-return calls
					lvl := w.exprTaint(taint, n.Rhs[0])
					for _, lhs := range n.Lhs {
						if lvl != notTainted && setObj(lhs, lvl) {
							changed = true
						}
					}
				}
			case *ast.ValueSpec:
				for i, name := range n.Names {
					if i < len(n.Values) {
						if lvl := w.exprTaint(taint, n.Values[i]); lvl != notTainted && setObj(name, lvl) {
							changed = true
						}
					}
				}
			case *ast.RangeStmt:
				if w.exprTaint(taint, n.X) != notTainted {
					// Elements of pooled storage alias it.
					if n.Value != nil && setObj(n.Value, derived) {
						changed = true
					}
				}
			}
			return true
		})
	}

	// Sinks: returned expressions.
	ast.Inspect(fd, func(n ast.Node) bool {
		if _, ok := n.(*ast.FuncLit); ok {
			// A return inside a closure leaves the closure, not this
			// function: not a sink here.
			return false
		}
		ret, ok := n.(*ast.ReturnStmt)
		if !ok {
			return true
		}
		exprs := ret.Results
		if len(exprs) == 0 {
			for _, obj := range namedResults {
				switch taint[obj] {
				case root:
					returnsRoot = true
				case derived:
					if sup != nil {
						sup.Reportf(ret.Pos(), "returned value %s aliases pooled scratch; copy into a fresh allocation or mark the producer //kw:fresh", obj.Name())
					}
				}
			}
			return true
		}
		for _, e := range exprs {
			switch w.exprTaint(taint, e) {
			case root:
				returnsRoot = true
			case derived:
				if sup != nil {
					sup.Reportf(e.Pos(), "returned value aliases pooled scratch; copy into a fresh allocation or mark the producer //kw:fresh")
				}
			}
		}
		return true
	})
	return returnsRoot
}

// exprTaint computes the taint level of one expression.
func (w *taintWalker) exprTaint(taint map[types.Object]int, e ast.Expr) int {
	info := w.pass.TypesInfo
	e = ast.Unparen(e)

	// Values of basic type cannot alias pooled storage.
	if tv, ok := info.Types[e]; ok && tv.Type != nil {
		if _, basic := tv.Type.Underlying().(*types.Basic); basic {
			return notTainted
		}
	}

	switch e := e.(type) {
	case *ast.Ident:
		if obj := info.ObjectOf(e); obj != nil {
			return taint[obj]
		}
	case *ast.SelectorExpr:
		if w.exprTaint(taint, e.X) != notTainted {
			return derived
		}
	case *ast.IndexExpr:
		if w.exprTaint(taint, e.X) != notTainted {
			return derived
		}
	case *ast.SliceExpr:
		if w.exprTaint(taint, e.X) != notTainted {
			return derived
		}
	case *ast.StarExpr:
		if w.exprTaint(taint, e.X) != notTainted {
			return derived
		}
	case *ast.UnaryExpr:
		if e.Op == token.AND && w.exprTaint(taint, e.X) != notTainted {
			return derived
		}
	case *ast.TypeAssertExpr:
		return w.exprTaint(taint, e.X) // assertion preserves identity
	case *ast.CompositeLit:
		for _, el := range e.Elts {
			if kv, ok := el.(*ast.KeyValueExpr); ok {
				el = kv.Value
			}
			if w.exprTaint(taint, el) != notTainted {
				return derived
			}
		}
	case *ast.CallExpr:
		return w.callTaint(taint, e)
	}
	return notTainted
}

// callTaint computes the taint of a call result.
func (w *taintWalker) callTaint(taint map[types.Object]int, call *ast.CallExpr) int {
	info := w.pass.TypesInfo

	// Type conversion: identity-preserving for reference types.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 {
			return w.exprTaint(taint, call.Args[0])
		}
		return notTainted
	}

	// Builtins: append's result aliases its destination, not its added
	// elements (a deliberate shallow-copy approximation — appending
	// tainted elements into a fresh slice copies them out).
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isB := info.ObjectOf(id).(*types.Builtin); isB {
			if b.Name() == "append" && len(call.Args) > 0 {
				return w.exprTaint(taint, call.Args[0])
			}
			return notTainted
		}
	}

	// (sync.Pool).Get: the taint source.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Get" {
		if named := kwutil.ReceiverType(info, call); kwutil.NamedIs(named, "sync", "Pool") {
			return root
		}
	}

	// Known callees: fresh wins, accessors hand out the root.
	if callee := staticCallee(info, call); callee != nil {
		if w.fresh[callee] || w.importedFresh(callee) {
			return notTainted
		}
		if w.pooled[callee] || w.importedPooled(callee) {
			return root
		}
	}

	// Unknown call with a tainted argument (or receiver): assume the
	// result may alias it.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if w.exprTaint(taint, sel.X) != notTainted {
			return derived
		}
	}
	for _, arg := range call.Args {
		if w.exprTaint(taint, arg) != notTainted {
			return derived
		}
	}
	return notTainted
}

func (w *taintWalker) importedFresh(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg() == w.pass.Pkg {
		return false
	}
	var f freshFact
	return w.pass.ImportObjectFact(fn, &f)
}

func (w *taintWalker) importedPooled(fn *types.Func) bool {
	if fn.Pkg() == nil || fn.Pkg() == w.pass.Pkg {
		return false
	}
	var f pooledFact
	return w.pass.ImportObjectFact(fn, &f)
}

func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}
