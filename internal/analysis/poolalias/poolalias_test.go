package poolalias_test

import (
	"testing"

	"contextrank/internal/analysis/atest"
	"contextrank/internal/analysis/poolalias"
)

func TestPoolalias(t *testing.T) {
	// poolaliasfix covers the taint walk end to end (leaks, accessors,
	// copies, //kw:fresh, suppression); poolfact/use proves accessor and
	// freshness facts cross package boundaries.
	atest.Run(t, "../testdata", poolalias.Analyzer,
		"poolaliasfix",
		"poolfact/use",
	)
}
