package determinism_test

import (
	"testing"

	"contextrank/internal/analysis/atest"
	"contextrank/internal/analysis/determinism"
)

func TestDeterminism(t *testing.T) {
	// internal/clicksim is in scope and holds both flagging and clean
	// cases; internal/searchsim covers the frozen-index build path
	// (freeze must stay a pure function of the corpus); notpipeline
	// commits every violation out of scope.
	atest.Run(t, "../testdata", determinism.Analyzer,
		"internal/clicksim",
		"internal/searchsim",
		"notpipeline",
	)
}
