// Package determinism implements the kwlint analyzer that keeps the
// deterministic pipeline deterministic.
//
// The reproduction promises bit-identical mined features and click
// simulations across runs regardless of worker scheduling (DESIGN.md,
// internal/core/determinism_test.go). The compiler cannot see that
// contract, so this analyzer enforces the three ways code most often
// breaks it:
//
//  1. wall-clock reads: time.Now / time.Since / time.Until;
//  2. the process-global math/rand source (rand.Intn, rand.Float64, …),
//     whose stream depends on every other caller in the process;
//  3. emitting a returned slice from a map range without sorting, which
//     leaks Go's randomized map iteration order into the output.
//
// Only packages inside the -packages scope are checked. _test.go files
// are NOT exempt: a test that reads the wall clock or the global rand
// source is flaky in exactly the way the pipeline must not be, and the
// first-class //kwlint:ignore directive exists for the rare test that
// legitimately needs one of these constructs.
//
// As the first analyzer in the suite roster, determinism additionally
// owns the cross-cutting annotation diagnostics in every package (not
// just its own scope): unknown //kw: verbs and malformed
// //kwlint:ignore directives are reported here, exactly once per run.
package determinism

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"contextrank/internal/analysis/kwutil"
)

// DefaultPackages is the deterministic-pipeline scope: every package
// whose outputs must be bit-identical across runs.
const DefaultPackages = "internal/world,internal/querylog,internal/clicksim,internal/clickgraph,internal/searchsim,internal/corpus,internal/core,internal/eval,internal/features,internal/relevance"

var scope = kwutil.NewScope(DefaultPackages)

var Analyzer = &analysis.Analyzer{
	Name: "determinism",
	Doc: "forbid wall-clock reads, the global math/rand source, and map-ordered output in the deterministic pipeline packages\n\n" +
		"The mined features and click simulations must be bit-identical across runs; this analyzer flags the constructs that silently break that contract.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.Var(scope, "packages", "comma-separated import-path suffixes to check")
}

// randConstructors are the math/rand functions that are allowed even in
// pipeline code: they build an injected source rather than draw from the
// global one. (Seed provenance is seededrand's job.)
var randConstructors = map[string]bool{"New": true, "NewSource": true, "NewZipf": true, "NewPCG": true, "NewChaCha8": true}

func run(pass *analysis.Pass) (interface{}, error) {
	// Suite-owner duties run in every package, before the scope gate:
	// NewSuppressor reports malformed //kwlint:ignore directives and
	// ReportMalformed claims unknown //kw: verbs (each exactly once per
	// suite run, since only AnalyzerNames[0] owns them).
	sup := kwutil.NewSuppressor(pass, "determinism")
	defer sup.Finish()
	kwutil.ReportMalformed(pass, "determinism", func(pos token.Pos, problem string) {
		pass.Reportf(pos, "%s", problem)
	})
	if !scope.InScope(pass) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.SelectorExpr)(nil)}, func(n ast.Node) {
		sel := n.(*ast.SelectorExpr)
		pkg, name := kwutil.PkgFunc(pass.TypesInfo, sel)
		switch pkg {
		case "time":
			if name == "Now" || name == "Since" || name == "Until" {
				sup.Reportf(sel.Pos(), "time.%s reads the wall clock inside a deterministic pipeline package; inject a clock or pass timestamps in", name)
			}
		case "math/rand", "math/rand/v2":
			if !randConstructors[name] {
				sup.Reportf(sel.Pos(), "global math/rand source (rand.%s) in a deterministic pipeline package; draw from an injected *rand.Rand instead", name)
			}
		}
	})

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil {
			checkMapOrder(pass, sup, body)
		}
	})

	return nil, nil
}

// checkMapOrder flags `for … := range m { s = append(s, …) }` when s is
// returned by the function and never passes through a sort. The append
// order then depends on map iteration order, which Go randomizes per run.
func checkMapOrder(pass *analysis.Pass, sup *kwutil.Suppressor, body *ast.BlockStmt) {
	returned := map[types.Object]bool{}
	sorted := map[types.Object]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				for _, obj := range kwutil.IdentObjects(pass.TypesInfo, res) {
					returned[obj] = true
				}
			}
		case *ast.CallExpr:
			if kwutil.IsSortCall(pass.TypesInfo, n) {
				for _, arg := range n.Args {
					for _, obj := range kwutil.IdentObjects(pass.TypesInfo, arg) {
						sorted[obj] = true
					}
				}
			}
		}
		return true
	})
	if len(returned) == 0 {
		return
	}

	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isMap := tv.Type.Underlying().(*types.Map); !isMap {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			assign, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			for i, rhs := range assign.Rhs {
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok || len(assign.Lhs) <= i {
					continue
				}
				if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fun.Name != "append" {
					continue
				}
				lhs, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
				if !ok {
					continue
				}
				obj := pass.TypesInfo.ObjectOf(lhs)
				if obj != nil && returned[obj] && !sorted[obj] {
					sup.Reportf(assign.Pos(), "%s is appended to while ranging over a map and returned without a sort; output depends on map iteration order", lhs.Name)
				}
			}
			return true
		})
		return true
	})
}
