// Package frozen implements the kwlint analyzer that enforces
// //kw:frozen-after(Method) annotations: once a type's freeze method has
// run, the value is immutable, so the only code allowed to write its
// fields is the freeze method itself and methods annotated //kw:builder
// (the build-phase API whose documented contract is "call before
// Freeze").
//
// searchsim's positional index established the pattern at runtime: Add
// panics after Freeze (DESIGN.md §10). The analyzer moves the same
// contract to compile time for every annotated type: a stray field write
// in a query path is a report, not a latent panic. The analysis is
// syntactic over field writes — assignments, increments, and deletes
// through any selector chain rooted in the frozen type — with the same
// constructor escape as lockguard: writes to a value the function itself
// constructed are the build phase by definition.
//
// The annotation is exported as a fact on the type, so packages
// importing a frozen type cannot mutate it either (they can never be
// builder methods — Go methods live with their type).
package frozen

import (
	"go/ast"
	"go/token"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"

	"contextrank/internal/analysis/kwutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "frozen",
	Doc: "enforce //kw:frozen-after(Method) immutability\n\n" +
		"Fields of a type annotated //kw:frozen-after(Freeze) may only be written inside Freeze itself, methods annotated //kw:builder, or functions that construct the value locally.",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*frozenFact)(nil)},
	Run:       run,
}

// frozenFact records the freeze-method name on the annotated type.
type frozenFact struct {
	Method string
}

func (*frozenFact) AFact()           {}
func (f *frozenFact) String() string { return "frozen-after(" + f.Method + ")" }

func run(pass *analysis.Pass) (interface{}, error) {
	sup := kwutil.NewSuppressor(pass, "frozen")
	kwutil.ReportMalformed(pass, "frozen", func(pos token.Pos, problem string) {
		pass.Reportf(pos, "%s", problem)
	})

	frozenTypes := map[*types.TypeName]string{} // type -> freeze method
	validPos := map[token.Pos]bool{}

	// Collect //kw:frozen-after from type declarations. The directive may
	// sit on the TypeSpec or, for a single-spec GenDecl, on the decl.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			gd, ok := decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.TYPE {
				continue
			}
			for _, spec := range gd.Specs {
				ts, ok := spec.(*ast.TypeSpec)
				if !ok {
					continue
				}
				docs := []*ast.CommentGroup{ts.Doc, ts.Comment}
				if len(gd.Specs) == 1 {
					docs = append(docs, gd.Doc)
				}
				for _, cg := range docs {
					for _, d := range kwutil.DocDirectives(cg, "frozen-after") {
						validPos[d.Pos] = true
						tn, _ := pass.TypesInfo.Defs[ts.Name].(*types.TypeName)
						if tn == nil {
							continue
						}
						if !hasMethod(tn, d.Arg) {
							pass.Reportf(d.Pos, "//kw:frozen-after(%s): type %s has no method %s", d.Arg, ts.Name.Name, d.Arg)
							continue
						}
						frozenTypes[tn] = d.Arg
						pass.ExportObjectFact(tn, &frozenFact{Method: d.Arg})
					}
				}
			}
		}
	}

	// Collect //kw:builder methods; validate they belong to frozen types.
	builders := map[*types.Func]bool{}
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok {
				continue
			}
			ds := kwutil.DocDirectives(fd.Doc, "builder")
			if len(ds) == 0 {
				continue
			}
			for _, d := range ds {
				validPos[d.Pos] = true
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			recv := receiverTypeName(fn)
			if recv == nil {
				pass.Reportf(ds[0].Pos, "//kw:builder on a non-method: only methods of a //kw:frozen-after type can be builders")
				continue
			}
			if _, isFrozen := frozenTypes[recv]; !isFrozen {
				pass.Reportf(ds[0].Pos, "//kw:builder on a method of %s, which has no //kw:frozen-after annotation", recv.Name())
				continue
			}
			builders[fn] = true
		}
	}

	// Misplaced directives are dead annotations: report them.
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, st, _ := kwutil.ParseDirective(c)
				if st != kwutil.DirectiveOK {
					continue
				}
				if (d.Verb == "frozen-after" || d.Verb == "builder") && !validPos[c.Pos()] {
					where := "a type declaration"
					if d.Verb == "builder" {
						where = "a method declaration"
					}
					pass.Reportf(c.Pos(), "misplaced //kw:%s: it only takes effect on %s", d.Verb, where)
				}
			}
		}
	}

	// freezeOf resolves a named type to its freeze method, local or
	// imported.
	freezeOf := func(tn *types.TypeName) (string, bool) {
		if m, ok := frozenTypes[tn]; ok {
			return m, true
		}
		if tn.Pkg() != nil && tn.Pkg() != pass.Pkg {
			var f frozenFact
			if pass.ImportObjectFact(tn, &f) {
				return f.Method, true
			}
		}
		return "", false
	}

	// Check field writes in every function that is not an allowed
	// mutation context.
	for _, f := range pass.Files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			if builders[fn] {
				continue // the build-phase API may mutate freely
			}
			if recv := receiverTypeName(fn); recv != nil {
				if m, ok := frozenTypes[recv]; ok && fn.Name() == m {
					continue // the freeze method itself
				}
			}
			checkWrites(pass, sup, fd, freezeOf)
		}
	}

	sup.Finish()
	return nil, nil
}

// checkWrites reports writes through selector chains rooted in frozen
// types, excepting locally-constructed values.
func checkWrites(pass *analysis.Pass, sup *kwutil.Suppressor, fd *ast.FuncDecl, freezeOf func(*types.TypeName) (string, bool)) {
	info := pass.TypesInfo

	constructed := map[types.Object]bool{}
	ast.Inspect(fd.Body, func(n ast.Node) bool {
		as, ok := n.(*ast.AssignStmt)
		if !ok {
			return true
		}
		for i, rhs := range as.Rhs {
			if i >= len(as.Lhs) || !isConstruction(info, rhs) {
				continue
			}
			if id, ok := ast.Unparen(as.Lhs[i]).(*ast.Ident); ok {
				if obj := info.ObjectOf(id); obj != nil {
					constructed[obj] = true
				}
			}
		}
		return true
	})

	report := func(target ast.Expr, pos token.Pos) {
		tn, method := frozenPrefix(info, target, freezeOf)
		if tn == nil {
			return
		}
		if root := rootObject(info, target); root != nil && constructed[root] {
			return
		}
		sup.Reportf(pos, "write to %s, frozen after %s(); mutate only in %s or a //kw:builder method", tn.Name(), method, method)
	}

	ast.Inspect(fd.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			for _, lhs := range n.Lhs {
				report(lhs, lhs.Pos())
			}
		case *ast.IncDecStmt:
			report(n.X, n.X.Pos())
		case *ast.CallExpr:
			// delete(frozen.m, k) and clear(frozen.s) mutate too.
			if id, ok := ast.Unparen(n.Fun).(*ast.Ident); ok && len(n.Args) > 0 {
				if b, isB := info.ObjectOf(id).(*types.Builtin); isB && (b.Name() == "delete" || b.Name() == "clear") {
					report(n.Args[0], n.Args[0].Pos())
				}
			}
		}
		return true
	})
}

// frozenPrefix walks the selector/index chain of a write target and
// returns the first frozen type it is rooted in, with its freeze method.
func frozenPrefix(info *types.Info, e ast.Expr, freezeOf func(*types.TypeName) (string, bool)) (*types.TypeName, string) {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.SelectorExpr:
			if tn, m := frozenType(info, x.X, freezeOf); tn != nil {
				return tn, m
			}
			e = x.X
		case *ast.IndexExpr:
			if tn, m := frozenType(info, x.X, freezeOf); tn != nil {
				return tn, m
			}
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil, ""
		}
	}
}

// frozenType reports whether the expression's type (behind pointers) is
// an annotated frozen type.
func frozenType(info *types.Info, e ast.Expr, freezeOf func(*types.TypeName) (string, bool)) (*types.TypeName, string) {
	tv, ok := info.Types[ast.Unparen(e)]
	if !ok || tv.Type == nil {
		return nil, ""
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil, ""
	}
	if m, ok := freezeOf(named.Obj()); ok {
		return named.Obj(), m
	}
	return nil, ""
}

// receiverTypeName returns the named type of a method's receiver, or nil
// for plain functions.
func receiverTypeName(fn *types.Func) *types.TypeName {
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil {
		return nil
	}
	t := sig.Recv().Type()
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, ok := t.(*types.Named)
	if !ok {
		return nil
	}
	return named.Obj()
}

// hasMethod reports whether the named type declares a method with the
// given name (value or pointer receiver).
func hasMethod(tn *types.TypeName, name string) bool {
	named, ok := tn.Type().(*types.Named)
	if !ok {
		return false
	}
	for i := 0; i < named.NumMethods(); i++ {
		if named.Method(i).Name() == name {
			return true
		}
	}
	return false
}

func rootObject(info *types.Info, e ast.Expr) types.Object {
	for {
		switch x := ast.Unparen(e).(type) {
		case *ast.Ident:
			return info.ObjectOf(x)
		case *ast.SelectorExpr:
			e = x.X
		case *ast.IndexExpr:
			e = x.X
		case *ast.StarExpr:
			e = x.X
		default:
			return nil
		}
	}
}

func isConstruction(info *types.Info, e ast.Expr) bool {
	switch x := ast.Unparen(e).(type) {
	case *ast.CompositeLit:
		return true
	case *ast.UnaryExpr:
		if x.Op == token.AND {
			_, isLit := ast.Unparen(x.X).(*ast.CompositeLit)
			return isLit
		}
	case *ast.CallExpr:
		if id, ok := ast.Unparen(x.Fun).(*ast.Ident); ok {
			if b, isB := info.ObjectOf(id).(*types.Builtin); isB && b.Name() == "new" {
				return true
			}
		}
	}
	return false
}
