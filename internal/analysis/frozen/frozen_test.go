package frozen_test

import (
	"testing"

	"contextrank/internal/analysis/atest"
	"contextrank/internal/analysis/frozen"
)

func TestFrozen(t *testing.T) {
	// frozenfix covers builder/freeze/constructor mutation contexts and
	// the malformed/misplaced annotations; frozenfact/use proves the
	// annotation binds importing packages through the exported fact.
	atest.Run(t, "../testdata", frozen.Analyzer,
		"frozenfix",
		"frozenfact/use",
	)
}
