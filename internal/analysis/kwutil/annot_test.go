package kwutil

import (
	"go/ast"
	"testing"
)

func parse(t *testing.T, text string) (Directive, DirectiveStatus, string) {
	t.Helper()
	return ParseDirective(&ast.Comment{Slash: 1, Text: text})
}

func TestParseDirectiveOK(t *testing.T) {
	cases := []struct {
		text string
		verb string
		arg  string
	}{
		{"//kw:hotpath", "hotpath", ""},
		{"//kw:coldpath", "coldpath", ""},
		{"//kw:fresh", "fresh", ""},
		{"//kw:builder", "builder", ""},
		{"//kw:guardedby(mu)", "guardedby", "mu"},
		{"//kw:guardedby(cacheMu)", "guardedby", "cacheMu"},
		{"//kw:holds(relMu)", "holds", "relMu"},
		{"//kw:frozen-after(Freeze)", "frozen-after", "Freeze"},
	}
	for _, c := range cases {
		d, st, problem := parse(t, c.text)
		if st != DirectiveOK {
			t.Errorf("%q: status %d (%s), want OK", c.text, st, problem)
			continue
		}
		if d.Verb != c.verb || d.Arg != c.arg {
			t.Errorf("%q: got verb=%q arg=%q, want verb=%q arg=%q", c.text, d.Verb, d.Arg, c.verb, c.arg)
		}
	}
}

func TestParseDirectiveMalformed(t *testing.T) {
	// Every malformed spelling must yield a diagnostic-worthy status —
	// never NotDirective, which would silently disable a contract.
	cases := []struct {
		text  string
		owner string // analyzer that must claim the report ("" = suite owner)
	}{
		{"//kw:hotpth", ""},                  // typo: unknown verb
		{"//kw:", ""},                        // empty verb
		{"//kw:hotpath(x)", "hotpath"},       // arg on no-arg verb
		{"//kw:guardedby", "lockguard"},      // missing required arg
		{"//kw:guardedby()", "lockguard"},    // empty arg
		{"//kw:guardedby(", "lockguard"},     // unterminated
		{"//kw:guardedby(a b)", "lockguard"}, // junk arg
		{"//kw:frozen-after", "frozen"},      // missing required arg
		{"//kw:holds( )", "lockguard"},       // blank arg
		{"//kw:fresh(x)", "poolalias"},       // arg on no-arg verb
	}
	for _, c := range cases {
		d, st, problem := parse(t, c.text)
		if st != DirectiveMalformed {
			t.Errorf("%q: status %d, want Malformed", c.text, st)
			continue
		}
		if problem == "" {
			t.Errorf("%q: malformed directive with empty problem text", c.text)
		}
		if got := OwnerOf(d.Verb); got != c.owner {
			t.Errorf("%q: owner %q, want %q", c.text, got, c.owner)
		}
	}
}

func TestParseDirectiveNotDirective(t *testing.T) {
	for _, text := range []string{
		"// plain comment",
		"// kw:hotpath with a leading space is prose, not a directive",
		"//kwlint:ignore hotpath — handled by parseIgnore, not ParseDirective",
		"//go:noinline",
	} {
		if _, st, _ := parse(t, text); st != NotDirective {
			t.Errorf("%q: status %d, want NotDirective", text, st)
		}
	}
}

func TestParseIgnore(t *testing.T) {
	cases := []struct {
		text     string
		analyzer string
		reason   string
		ok       bool
	}{
		{"//kwlint:ignore floatcompare — asserting bit-exact determinism", "floatcompare", "asserting bit-exact determinism", true},
		{"//kwlint:ignore hotpath -- double-dash separator works too", "hotpath", "double-dash separator works too", true},
		{"//kwlint:ignore hotpath", "hotpath", "", true}, // missing reason: malformed
		{"//kwlint:ignore — no analyzer named", "", "no analyzer named", true},
		{"//kwlint:suppress hotpath — wrong keyword", "", "", true}, // still claimed as malformed
		{"// not an ignore at all", "", "", false},
		{"//kw:hotpath", "", "", false},
	}
	for _, c := range cases {
		analyzer, reason, ok := parseIgnore(c.text)
		if ok != c.ok {
			t.Errorf("%q: ok=%v, want %v", c.text, ok, c.ok)
			continue
		}
		if !ok {
			continue
		}
		if analyzer != c.analyzer || reason != c.reason {
			t.Errorf("%q: got (%q, %q), want (%q, %q)", c.text, analyzer, reason, c.analyzer, c.reason)
		}
	}
}

func TestAnalyzerNamesRoster(t *testing.T) {
	if len(AnalyzerNames) != 10 {
		t.Fatalf("AnalyzerNames has %d entries, want 10", len(AnalyzerNames))
	}
	seen := map[string]bool{}
	for _, n := range AnalyzerNames {
		if seen[n] {
			t.Errorf("duplicate analyzer name %q", n)
		}
		seen[n] = true
		if !KnownAnalyzer(n) {
			t.Errorf("KnownAnalyzer(%q) = false", n)
		}
	}
	if KnownAnalyzer("nosuch") {
		t.Error(`KnownAnalyzer("nosuch") = true`)
	}
	// Every verb's owner must be a real analyzer in the roster.
	for verb, owner := range verbOwner {
		if !KnownAnalyzer(owner) {
			t.Errorf("verb %q owned by unknown analyzer %q", verb, owner)
		}
		if _, ok := verbArg[verb]; !ok {
			t.Errorf("verb %q has an owner but no arg spec", verb)
		}
	}
	for verb := range verbArg {
		if verbOwner[verb] == "" {
			t.Errorf("verb %q has no owner", verb)
		}
	}
}

func TestDocDirectives(t *testing.T) {
	doc := &ast.CommentGroup{List: []*ast.Comment{
		{Slash: 1, Text: "// AnnotateCtx is the request hot path."},
		{Slash: 2, Text: "//kw:hotpath"},
		{Slash: 3, Text: "//kw:holds(mu)"},
	}}
	if !HasDirective(doc, "hotpath") {
		t.Error("HasDirective(hotpath) = false")
	}
	if HasDirective(doc, "coldpath") {
		t.Error("HasDirective(coldpath) = true")
	}
	ds := DocDirectives(doc, "holds")
	if len(ds) != 1 || ds[0].Arg != "mu" {
		t.Errorf("DocDirectives(holds) = %+v", ds)
	}
	if HasDirective(nil, "hotpath") {
		t.Error("HasDirective(nil) = true")
	}
}
