package kwutil

// This file implements the machine-readable annotation layer shared by the
// contract-enforcement analyzers (DESIGN.md §9):
//
//	//kw:<verb>            e.g. //kw:hotpath
//	//kw:<verb>(<arg>)     e.g. //kw:guardedby(mu)
//
// and the first-class suppression directive:
//
//	//kwlint:ignore <analyzer> — <reason>
//
// Directives are strict: a comment beginning with "//kw:" or
// "//kwlint:" that does not parse is a diagnostic, never silently
// ignored — a typo'd //kw:hotpth must not quietly disable a contract.
// Every verb has exactly one owning analyzer (verbOwner); the owner
// reports that verb's malformed spellings, and the first analyzer in the
// suite (AnalyzerNames[0]) reports unknown verbs and malformed ignores,
// so the full-suite run reports each problem exactly once.

import (
	"fmt"
	"go/ast"
	"go/token"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// AnalyzerNames is the full kwlint suite roster in registration order. It
// is the source of truth the kwlint package, the ignore validator, and the
// CI-name sync test all check against.
var AnalyzerNames = []string{
	"determinism", "orderedfanout", "seededrand", "floatcompare", "errsink",
	"hotpath", "poolalias", "lockguard", "frozen", "ctxflow",
}

// KnownAnalyzer reports whether name is in the suite roster.
func KnownAnalyzer(name string) bool {
	for _, n := range AnalyzerNames {
		if n == name {
			return true
		}
	}
	return false
}

// Directive is one parsed //kw: annotation.
type Directive struct {
	Verb string // "hotpath", "guardedby", ...
	Arg  string // parenthesized argument, "" when the verb takes none
	Pos  token.Pos
}

// verbArg records the known verbs and whether each requires an argument.
var verbArg = map[string]bool{
	"hotpath":      false, // function: allocation-discipline contract
	"coldpath":     false, // function: excluded from hotpath transitive checks
	"fresh":        false, // function: result never aliases arguments or pooled state
	"guardedby":    true,  // struct field: may only be touched with the named mutex held
	"holds":        true,  // function: caller provides the named mutex held
	"frozen-after": true,  // type: immutable once the named method has run
	"builder":      false, // method: allowed to mutate its frozen-after receiver
}

// verbOwner maps each verb to the analyzer that consumes (and therefore
// validates) it.
var verbOwner = map[string]string{
	"hotpath":      "hotpath",
	"coldpath":     "hotpath",
	"fresh":        "poolalias",
	"guardedby":    "lockguard",
	"holds":        "lockguard",
	"frozen-after": "frozen",
	"builder":      "frozen",
}

// DirectiveStatus classifies one comment.
type DirectiveStatus int

const (
	// NotDirective: the comment is not a //kw: annotation at all.
	NotDirective DirectiveStatus = iota
	// DirectiveOK: parsed successfully.
	DirectiveOK
	// DirectiveMalformed: begins with //kw: but does not parse.
	DirectiveMalformed
)

// ParseDirective classifies one comment. On DirectiveMalformed, problem
// describes what is wrong and d.Verb holds the verb when it was at least
// recognizable (so the owning analyzer can claim the report).
func ParseDirective(c *ast.Comment) (d Directive, st DirectiveStatus, problem string) {
	text := c.Text
	if !strings.HasPrefix(text, "//kw:") {
		return d, NotDirective, ""
	}
	d.Pos = c.Pos()
	body := text[len("//kw:"):]
	// The directive is the first token; trailing prose ("//kw:guardedby(mu)
	// — shard lock") is ignored.
	if i := strings.IndexAny(body, " \t"); i >= 0 {
		body = body[:i]
	}
	verb, rest := body, ""
	if i := strings.IndexByte(body, '('); i >= 0 {
		verb, rest = body[:i], body[i:]
	}
	d.Verb = verb
	needsArg, known := verbArg[verb]
	if !known {
		d.Verb = "" // unknown verbs are claimed by the suite owner
		return d, DirectiveMalformed, "unknown //kw: verb " + quoteVerb(verb)
	}
	if rest == "" {
		if needsArg {
			return d, DirectiveMalformed, "//kw:" + verb + " requires an argument: //kw:" + verb + "(<name>)"
		}
		return d, DirectiveOK, ""
	}
	if needsArg {
		if !strings.HasSuffix(rest, ")") || len(rest) < 3 {
			return d, DirectiveMalformed, "malformed //kw:" + verb + " argument; want //kw:" + verb + "(<name>)"
		}
		d.Arg = rest[1 : len(rest)-1]
		if strings.TrimSpace(d.Arg) == "" || strings.ContainsAny(d.Arg, " ()") {
			return d, DirectiveMalformed, "malformed //kw:" + verb + " argument " + quoteVerb(d.Arg)
		}
		return d, DirectiveOK, ""
	}
	return d, DirectiveMalformed, "//kw:" + verb + " takes no argument"
}

func quoteVerb(v string) string {
	if len(v) > 40 {
		v = v[:40] + "…"
	}
	return "\"" + v + "\""
}

// OwnerOf returns the analyzer that owns verb ("" for unknown verbs, which
// belong to the suite owner AnalyzerNames[0]).
func OwnerOf(verb string) string { return verbOwner[verb] }

// DocDirectives returns the well-formed directives in a comment group whose
// verbs are in want (nil group is fine).
func DocDirectives(doc *ast.CommentGroup, want ...string) []Directive {
	if doc == nil {
		return nil
	}
	var out []Directive
	for _, c := range doc.List {
		d, st, _ := ParseDirective(c)
		if st != DirectiveOK {
			continue
		}
		for _, w := range want {
			if d.Verb == w {
				out = append(out, d)
				break
			}
		}
	}
	return out
}

// HasDirective reports whether doc carries //kw:<verb>.
func HasDirective(doc *ast.CommentGroup, verb string) bool {
	return len(DocDirectives(doc, verb)) > 0
}

// ReportMalformed walks every comment of the package and reports, through
// report, the malformed //kw: directives owned by analyzer name. The suite
// owner additionally claims unknown verbs. Each analyzer calls this once so
// a malformed directive is diagnosed by exactly one analyzer, whichever
// subset of the suite is running.
func ReportMalformed(pass *analysis.Pass, name string, report func(token.Pos, string)) {
	suiteOwner := name == AnalyzerNames[0]
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, st, problem := ParseDirective(c)
				if st != DirectiveMalformed {
					continue
				}
				owner := OwnerOf(d.Verb)
				if owner == name || (owner == "" && suiteOwner) {
					report(c.Pos(), problem)
				}
			}
		}
	}
}

// ignoreEntry is one //kwlint:ignore directive for a specific analyzer.
type ignoreEntry struct {
	pos  token.Pos
	used bool
}

// fileLine keys suppression to the line the directive sits on.
type fileLine struct {
	file string
	line int
}

// Suppressor routes an analyzer's diagnostics through the first-class
// ignore mechanism: a diagnostic reported on the same line as a
//
//	//kwlint:ignore <analyzer> — <reason>
//
// directive naming this analyzer is suppressed; at Finish, ignores that
// suppressed nothing are themselves reported (an unused ignore is stale
// armor — it hides nothing and must be removed). The reason is mandatory
// ("—" or "--" separated): suppressions document their judgment call.
type Suppressor struct {
	pass    *analysis.Pass
	name    string
	entries map[fileLine]*ignoreEntry
}

// NewSuppressor scans the package for ignore directives aimed at analyzer
// name. Malformed ignores (missing analyzer, unknown analyzer, missing
// reason) are reported by the suite owner only, so the full run diagnoses
// each exactly once.
func NewSuppressor(pass *analysis.Pass, name string) *Suppressor {
	s := &Suppressor{pass: pass, name: name, entries: map[fileLine]*ignoreEntry{}}
	suiteOwner := name == AnalyzerNames[0]
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				target, reason, ok := parseIgnore(c.Text)
				if !ok {
					continue
				}
				switch {
				case target == "" || !KnownAnalyzer(target):
					if suiteOwner {
						pass.Reportf(c.Pos(), "malformed //kwlint:ignore: want //kwlint:ignore <analyzer> — <why>, with <analyzer> one of %s", strings.Join(AnalyzerNames, "/"))
					}
				case reason == "":
					if suiteOwner {
						pass.Reportf(c.Pos(), "//kwlint:ignore %s is missing its reason: //kwlint:ignore %s — <why>", target, target)
					}
				case target == name:
					p := pass.Fset.Position(c.Pos())
					s.entries[fileLine{p.Filename, p.Line}] = &ignoreEntry{pos: c.Pos()}
				}
			}
		}
	}
	return s
}

// parseIgnore splits "//kwlint:ignore <analyzer> — <reason>". ok is false
// for comments that are not ignore directives at all.
func parseIgnore(text string) (analyzer, reason string, ok bool) {
	if !strings.HasPrefix(text, "//kwlint:") {
		return "", "", false
	}
	rest := strings.TrimPrefix(text, "//kwlint:")
	if !strings.HasPrefix(rest, "ignore") {
		return "", "", true // //kwlint: with a bad keyword: malformed ignore
	}
	rest = strings.TrimSpace(strings.TrimPrefix(rest, "ignore"))
	for _, sep := range []string{"—", "--"} {
		if i := strings.Index(rest, sep); i >= 0 {
			return strings.TrimSpace(rest[:i]), strings.TrimSpace(rest[i+len(sep):]), true
		}
	}
	return strings.TrimSpace(rest), "", true
}

// Report forwards d unless an ignore for this analyzer sits on its line.
func (s *Suppressor) Report(d analysis.Diagnostic) {
	p := s.pass.Fset.Position(d.Pos)
	if e, ok := s.entries[fileLine{p.Filename, p.Line}]; ok {
		e.used = true
		return
	}
	s.pass.Report(d)
}

// Reportf is the printf form of Report.
func (s *Suppressor) Reportf(pos token.Pos, format string, args ...interface{}) {
	s.Report(analysis.Diagnostic{Pos: pos, Message: fmt.Sprintf(format, args...)})
}

// Finish reports ignores that suppressed nothing. Call after the analyzer's
// main pass.
func (s *Suppressor) Finish() {
	for _, e := range s.entries {
		if !e.used {
			s.pass.Reportf(e.pos, "unused //kwlint:ignore for %s: it suppresses nothing — remove it", s.name)
		}
	}
}
