// Package kwutil holds helpers shared by the kwlint analyzers: package
// scoping, test-file detection, and small go/types lookups.
//
// Every kwlint analyzer is scoped — it only fires inside the packages
// that carry the contract it enforces (the deterministic pipeline, the
// ranking/eval code, the serve layer). Scopes are expressed as
// slash-separated import-path suffixes ("internal/world") so they match
// both the real module path ("contextrank/internal/world") and the bare
// fixture paths used by analysistest-style harnesses ("internal/world").
package kwutil

import (
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
)

// Scope is a set of import-path suffixes. The zero value matches nothing.
type Scope struct {
	suffixes []string
}

// NewScope parses a comma-separated suffix list, e.g.
// "internal/world,internal/querylog".
func NewScope(csv string) *Scope {
	s := &Scope{}
	s.Set(csv)
	return s
}

// Set implements flag.Value so a Scope can be bound to an analyzer flag.
func (s *Scope) Set(csv string) error {
	s.suffixes = s.suffixes[:0]
	for _, part := range strings.Split(csv, ",") {
		part = strings.Trim(strings.TrimSpace(part), "/")
		if part != "" {
			s.suffixes = append(s.suffixes, part)
		}
	}
	return nil
}

// String implements flag.Value.
func (s *Scope) String() string { return strings.Join(s.suffixes, ",") }

// Matches reports whether the import path is inside the scope: equal to a
// suffix, or ending in "/"+suffix.
func (s *Scope) Matches(path string) bool {
	for _, suf := range s.suffixes {
		if path == suf || strings.HasSuffix(path, "/"+suf) {
			return true
		}
	}
	return false
}

// InScope reports whether the package under analysis is inside the scope.
func (s *Scope) InScope(pass *analysis.Pass) bool {
	return s.Matches(pass.Pkg.Path())
}

// IsTestFile reports whether pos sits in a _test.go file. The kwlint
// contracts govern production code; tests may freeze time, hard-code
// seeds, and compare floats exactly.
func IsTestFile(fset *token.FileSet, pos token.Pos) bool {
	f := fset.File(pos)
	return f == nil || strings.HasSuffix(f.Name(), "_test.go")
}

// PkgFunc resolves a call or bare reference to a package-level function
// and returns its package path and name ("math/rand", "Intn"). The empty
// strings are returned for anything else (methods, locals, builtins).
func PkgFunc(info *types.Info, expr ast.Expr) (pkgPath, name string) {
	var obj types.Object
	switch e := ast.Unparen(expr).(type) {
	case *ast.SelectorExpr:
		obj = info.Uses[e.Sel]
	case *ast.Ident:
		obj = info.Uses[e]
	default:
		return "", ""
	}
	fn, ok := obj.(*types.Func)
	if !ok || fn.Pkg() == nil {
		return "", ""
	}
	if sig, ok := fn.Type().(*types.Signature); !ok || sig.Recv() != nil {
		return "", ""
	}
	return fn.Pkg().Path(), fn.Name()
}

// ReceiverType returns the named type (after pointer indirection) of a
// method call's receiver, or nil.
func ReceiverType(info *types.Info, call *ast.CallExpr) *types.Named {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return nil
	}
	tv, ok := info.Types[sel.X]
	if !ok {
		return nil
	}
	t := tv.Type
	if ptr, ok := t.Underlying().(*types.Pointer); ok {
		t = ptr.Elem()
	}
	named, _ := t.(*types.Named)
	return named
}

// NamedIs reports whether named is exactly pkgPath.name.
func NamedIs(named *types.Named, pkgPath, name string) bool {
	if named == nil {
		return false
	}
	obj := named.Obj()
	return obj != nil && obj.Pkg() != nil && obj.Pkg().Path() == pkgPath && obj.Name() == name
}

// IdentObjects collects the objects of every identifier in expr, except
// under len/cap — returning a slice's length does not leak its order.
func IdentObjects(info *types.Info, expr ast.Expr) []types.Object {
	var objs []types.Object
	ast.Inspect(expr, func(n ast.Node) bool {
		if call, ok := n.(*ast.CallExpr); ok {
			if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
				if b, isBuiltin := info.ObjectOf(fun).(*types.Builtin); isBuiltin && (b.Name() == "len" || b.Name() == "cap") {
					return false
				}
			}
		}
		if id, ok := n.(*ast.Ident); ok {
			if obj := info.ObjectOf(id); obj != nil {
				objs = append(objs, obj)
			}
		}
		return true
	})
	return objs
}

// IsSortCall recognizes anything that imposes an order on its argument:
// sort.* and slices.* calls (including sort.Sort(wrapper(s))), plus
// project-local sort helpers by naming convention — a function whose name
// contains "Sort" (corpus.SortVector, sortByScore, …).
func IsSortCall(info *types.Info, call *ast.CallExpr) bool {
	pkg, name := PkgFunc(info, call.Fun)
	if pkg == "sort" || pkg == "slices" {
		return true
	}
	if name == "" {
		// Local helpers and methods: fall back to the syntactic name.
		switch fun := ast.Unparen(call.Fun).(type) {
		case *ast.Ident:
			name = fun.Name
		case *ast.SelectorExpr:
			name = fun.Sel.Name
		}
	}
	return strings.Contains(name, "Sort") || strings.HasPrefix(name, "sort")
}

// ContainsTimeNow reports whether the expression tree contains a call to
// time.Now (directly or under conversions/arithmetic, e.g.
// time.Now().UnixNano()).
func ContainsTimeNow(info *types.Info, expr ast.Expr) bool {
	found := false
	ast.Inspect(expr, func(n ast.Node) bool {
		if found {
			return false
		}
		if call, ok := n.(*ast.CallExpr); ok {
			if pkg, name := PkgFunc(info, call.Fun); pkg == "time" && name == "Now" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
