package hotpath_test

import (
	"testing"

	"contextrank/internal/analysis/atest"
	"contextrank/internal/analysis/hotpath"
)

func TestHotpath(t *testing.T) {
	// hotpathfix holds one hot function per banned construct and per
	// blessed idiom; hotfact/use proves may-allocate and exemption
	// summaries cross package boundaries as facts.
	atest.Run(t, "../testdata", hotpath.Analyzer,
		"hotpathfix",
		"hotfact/use",
	)
}
