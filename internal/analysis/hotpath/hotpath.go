// Package hotpath implements the kwlint analyzer that enforces the
// allocation discipline of DESIGN.md §10 on functions annotated
// //kw:hotpath.
//
// The annotate/detect/eval paths budget their allocations per operation
// (BENCH.baseline.json pins the counts); a stray fmt.Sprintf or an
// append loop on a fresh nil slice silently multiplies them. The
// analyzer bans the constructs that create unbounded or per-call heap
// garbage inside a hot function and everything it statically calls:
//
//   - calls into fmt, and a denylist of other allocating stdlib calls
//     (strings.Join/Split/ToLower…, strconv formatting, regexp FindAll…)
//   - string ↔ []byte conversions (except as a map index, where the
//     compiler elides the copy: m[string(b)])
//   - heap composite literals: slice/map literals, &T{…}, new(T), and
//     make(map)/make(chan); make([]T, n, cap) is allowed — preallocation
//     is the prescribed idiom
//   - append growth on a slice declared empty without capacity
//   - closures that capture variables and escape the function
//   - interface boxing of non-pointer values at call boundaries
//     (pointers fit the interface word; values must be heap-copied)
//
// Calls to functions in the same module are checked transitively: each
// package exports a may-allocate summary fact for its functions, and a
// hot function calling anything whose summary says "may allocate" is a
// violation at the call site. Escape hatches are explicit and named:
// //kw:coldpath marks a callee as off the hot path (rare branches,
// failure paths), and a //kwlint:ignore hotpath — <why> comment accepts
// a documented allocation into the benchmark budget. sort.*/slices.*
// calls are exempt as a whole (one bounded closure allocation,
// documented in §10), as are panic arguments (the failure path may
// format freely).
package hotpath

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"strings"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"

	"contextrank/internal/analysis/kwutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "hotpath",
	Doc: "enforce the //kw:hotpath allocation discipline\n\n" +
		"Functions annotated //kw:hotpath (and everything they statically call, via cross-package facts) must avoid fmt, string↔[]byte conversions, heap composite literals, un-preallocated append growth, escaping closures, and interface boxing. //kw:coldpath exempts a callee; //kwlint:ignore hotpath — <why> accepts a documented allocation.",
	Requires:  []*analysis.Analyzer{inspect.Analyzer},
	FactTypes: []analysis.Fact{(*funcFact)(nil)},
	Run:       run,
}

// funcFact is the exported per-function summary. Exempt means the
// function is itself under the hotpath contract (//kw:hotpath, checked
// at its own declaration) or declared off it (//kw:coldpath); MayAlloc
// carries the first reason found.
type funcFact struct {
	MayAlloc bool
	Exempt   bool
	Reason   string
}

func (*funcFact) AFact() {}
func (f *funcFact) String() string {
	return fmt.Sprintf("hotpath(mayAlloc=%v exempt=%v %s)", f.MayAlloc, f.Exempt, f.Reason)
}

// violation is one banned construct found in a function body.
type violation struct {
	pos token.Pos
	msg string
	fix []analysis.SuggestedFix
}

func run(pass *analysis.Pass) (interface{}, error) {
	sup := kwutil.NewSuppressor(pass, "hotpath")
	kwutil.ReportMalformed(pass, "hotpath", func(pos token.Pos, problem string) {
		pass.Reportf(pos, "%s", problem)
	})

	// Collect annotations and function declarations.
	var (
		decls  []*ast.FuncDecl
		fnOf   = map[*ast.FuncDecl]*types.Func{}
		hot    = map[*types.Func]bool{}
		exempt = map[*types.Func]bool{} // //kw:hotpath or //kw:coldpath
		docPos = map[token.Pos]bool{}   // comments attached to FuncDecl docs
	)
	for _, f := range pass.Files {
		for _, d := range f.Decls {
			fd, ok := d.(*ast.FuncDecl)
			if !ok {
				continue
			}
			fn, _ := pass.TypesInfo.Defs[fd.Name].(*types.Func)
			if fn == nil {
				continue
			}
			decls = append(decls, fd)
			fnOf[fd] = fn
			if fd.Doc != nil {
				for _, c := range fd.Doc.List {
					docPos[c.Pos()] = true
				}
			}
			if kwutil.HasDirective(fd.Doc, "hotpath") {
				hot[fn] = true
				exempt[fn] = true
			}
			if kwutil.HasDirective(fd.Doc, "coldpath") {
				exempt[fn] = true
			}
		}
	}

	// A //kw:hotpath or //kw:coldpath anywhere but a function's doc
	// comment silently enforces nothing — that must be loud.
	for _, f := range pass.Files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				d, st, _ := kwutil.ParseDirective(c)
				if st != kwutil.DirectiveOK || (d.Verb != "hotpath" && d.Verb != "coldpath") {
					continue
				}
				if !docPos[c.Pos()] {
					pass.Reportf(c.Pos(), "misplaced //kw:%s: it only takes effect in the doc comment of a function declaration", d.Verb)
				}
			}
		}
	}

	c := &checker{pass: pass, exempt: exempt}

	// Per-function direct violations and local call edges.
	directVios := map[*types.Func][]violation{}
	localCalls := map[*types.Func][]callsite{}
	for _, fd := range decls {
		if fd.Body == nil {
			continue
		}
		fn := fnOf[fd]
		vios, calls := c.check(fd.Body)
		directVios[fn] = vios
		localCalls[fn] = calls
	}

	// Fixpoint: a function may allocate if it has a direct violation or
	// calls (locally) a non-exempt function that may allocate.
	mayAlloc := map[*types.Func]string{} // reason
	for fn, vios := range directVios {
		if len(vios) > 0 {
			mayAlloc[fn] = shortReason(pass, vios[0])
		}
	}
	for changed := true; changed; {
		changed = false
		for fn, calls := range localCalls {
			if _, done := mayAlloc[fn]; done {
				continue
			}
			for _, cs := range calls {
				if cs.reason != "" { // cross-package or denylist, pre-resolved
					mayAlloc[fn] = cs.reason
					changed = true
					break
				}
				if exempt[cs.callee] {
					continue
				}
				if r, bad := mayAlloc[cs.callee]; bad {
					mayAlloc[fn] = "calls " + cs.callee.Name() + " (" + r + ")"
					changed = true
					break
				}
			}
		}
	}

	// Export summaries for importing packages.
	for _, fd := range decls {
		fn := fnOf[fd]
		f := &funcFact{Exempt: exempt[fn]}
		if r, bad := mayAlloc[fn]; bad {
			f.MayAlloc, f.Reason = true, r
		}
		if f.MayAlloc || f.Exempt {
			pass.ExportObjectFact(fn, f)
		}
	}

	// Report inside hot functions: every direct violation, and every call
	// site whose callee may allocate.
	for _, fd := range decls {
		fn := fnOf[fd]
		if !hot[fn] {
			continue
		}
		for _, v := range directVios[fn] {
			sup.Report(analysis.Diagnostic{Pos: v.pos, Message: v.msg, SuggestedFixes: v.fix})
		}
		for _, cs := range localCalls[fn] {
			if cs.reason != "" {
				sup.Reportf(cs.pos, "hot path calls %s, which may allocate (%s)", cs.name, cs.reason)
				continue
			}
			if exempt[cs.callee] {
				continue
			}
			if r, bad := mayAlloc[cs.callee]; bad {
				sup.Reportf(cs.pos, "hot path calls %s, which may allocate (%s)", cs.callee.Name(), r)
			}
		}
	}

	sup.Finish()
	return nil, nil
}

func shortReason(pass *analysis.Pass, v violation) string {
	msg := v.msg
	if i := strings.Index(msg, " on the hot path"); i > 0 {
		msg = msg[:i]
	}
	if len(msg) > 120 {
		msg = msg[:120] + "…"
	}
	return fmt.Sprintf("%s at %s", msg, pass.Fset.Position(v.pos))
}

// callsite is one statically-resolved call from a checked function.
// Same-package callees carry callee (resolved during the fixpoint);
// cross-package and denylisted callees arrive pre-resolved with a
// non-empty reason, or are dropped entirely when known clean.
type callsite struct {
	pos    token.Pos
	name   string
	callee *types.Func // same-package callee, nil otherwise
	reason string      // pre-resolved violation reason ("" for local/clean)
}

type checker struct {
	pass   *analysis.Pass
	exempt map[*types.Func]bool
}

// check walks one function body collecting direct violations and call
// edges. It is applied to every function in the package — summaries for
// plain functions, reports for hot ones.
func (c *checker) check(body *ast.BlockStmt) (vios []violation, calls []callsite) {
	info := c.pass.TypesInfo

	// Conversions used as map keys are exempt: collect them first.
	keyConv := map[ast.Expr]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		ix, ok := n.(*ast.IndexExpr)
		if !ok {
			return true
		}
		if tv, ok := info.Types[ix.X]; ok {
			if _, isMap := tv.Type.Underlying().(*types.Map); isMap {
				keyConv[ast.Unparen(ix.Index)] = true
			}
		}
		return true
	})

	// Fresh empty slices: local vars declared with no backing capacity.
	freshSlice := c.freshSlices(body)

	var walk func(n ast.Node) bool
	walk = func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			return c.checkCall(n, keyConv, freshSlice, &vios, &calls, walk)
		case *ast.CompositeLit:
			if v, bad := c.compositeViolation(n, false); bad {
				vios = append(vios, v)
				return false
			}
		case *ast.UnaryExpr:
			if n.Op == token.AND {
				if cl, ok := ast.Unparen(n.X).(*ast.CompositeLit); ok {
					if v, bad := c.compositeViolation(cl, true); bad {
						vios = append(vios, v)
						return false
					}
				}
			}
		case *ast.FuncLit:
			// Reached outside an exempting context (checkCall intercepts
			// sort args): a capturing closure here escapes or is at least
			// unproven not to.
			if capt := c.captures(n); capt != "" {
				vios = append(vios, violation{pos: n.Pos(), msg: "closure capturing " + capt + " allocates on the hot path; hoist the state or use a method value"})
			}
			// Still check the body: it runs on the hot path.
			ast.Inspect(n.Body, walk)
			return false
		}
		return true
	}
	ast.Inspect(body, walk)
	return vios, calls
}

// checkCall handles every call form: builtins, conversions, sort/panic
// exemptions, boxing at the call boundary, denylists, and call-edge
// collection. Returns false when it has descended manually.
func (c *checker) checkCall(call *ast.CallExpr, keyConv map[ast.Expr]bool, freshSlice map[types.Object]*violation, vios *[]violation, calls *[]callsite, walk func(ast.Node) bool) bool {
	info := c.pass.TypesInfo

	// Type conversions.
	if tv, ok := info.Types[call.Fun]; ok && tv.IsType() {
		if len(call.Args) == 1 && !keyConv[call] {
			if v, bad := conversionViolation(info, call, tv.Type); bad {
				*vios = append(*vios, v)
			}
		}
		// Conversions to interface box their operand.
		if _, isIface := tv.Type.Underlying().(*types.Interface); isIface && len(call.Args) == 1 {
			if boxes(info, call.Args[0]) {
				*vios = append(*vios, violation{pos: call.Pos(), msg: "conversion to interface boxes a value on the hot path"})
			}
		}
		return true
	}

	// Builtins.
	if id, ok := ast.Unparen(call.Fun).(*ast.Ident); ok {
		if b, isBuiltin := info.ObjectOf(id).(*types.Builtin); isBuiltin {
			switch b.Name() {
			case "panic":
				// The failure path may format freely.
				return false
			case "make":
				if v, bad := makeViolation(info, call); bad {
					*vios = append(*vios, v)
				}
			case "new":
				*vios = append(*vios, violation{pos: call.Pos(), msg: "new(T) allocates on the hot path"})
			case "append":
				if len(call.Args) > 0 {
					if id, ok := ast.Unparen(call.Args[0]).(*ast.Ident); ok {
						if v, fresh := freshSlice[info.ObjectOf(id)]; fresh {
							*vios = append(*vios, *v)
							delete(freshSlice, info.ObjectOf(id)) // one report per slice
						}
					}
				}
			}
			return true
		}
	}

	// sort.* / slices.* and project Sort helpers: the closure argument is
	// the documented single bounded allocation (§10); boxing through
	// sort.Interface is likewise accepted. Bodies still run hot.
	if kwutil.IsSortCall(info, call) {
		for _, arg := range call.Args {
			if fl, ok := ast.Unparen(arg).(*ast.FuncLit); ok {
				ast.Inspect(fl.Body, walk)
			}
		}
		return false
	}

	// Resolve the callee; a call that is itself a violation (denylisted
	// or known-allocating via fact) is reported once, without piling a
	// boxing diagnostic onto its arguments.
	callee := calleeFunc(info, call)
	boxCheck := func() {
		if sig, ok := info.Types[call.Fun].Type.(*types.Signature); ok {
			c.checkBoxing(call, sig, vios)
		}
	}
	if callee == nil || callee.Pkg() == nil {
		boxCheck()
		return true // dynamic call (func value, interface method): unknowable
	}
	pos := call.Pos()
	if callee.Pkg() == c.pass.Pkg {
		boxCheck()
		*calls = append(*calls, callsite{pos: pos, name: callee.Name(), callee: callee})
		return true
	}
	// Cross-package: facts first (module-internal only), then the stdlib
	// denylist. Facts are trusted only inside the module tree: the stdlib
	// is governed by the explicit denylist instead, so a pessimistic
	// may-alloc summary of a runtime slow path (sync.Pool.Get pinning the
	// P, say) does not poison every pooled hot path.
	if sameModule(callee.Pkg(), c.pass.Pkg) {
		var fact funcFact
		if c.pass.ImportObjectFact(callee, &fact) {
			if fact.MayAlloc && !fact.Exempt {
				*calls = append(*calls, callsite{pos: pos, name: qualName(callee), reason: fact.Reason})
				return true
			}
			boxCheck()
			return true
		}
	}
	if reason := denylisted(info, call, callee); reason != "" {
		*calls = append(*calls, callsite{pos: pos, name: qualName(callee), reason: reason})
		return true
	}
	boxCheck()
	return true
}

// checkBoxing flags non-pointer concrete arguments passed to interface
// parameters: the value must be copied to the heap to fit the interface
// word. Pointer-shaped values (pointers, channels, maps, funcs, unsafe
// pointers) box without an allocation.
func (c *checker) checkBoxing(call *ast.CallExpr, sig *types.Signature, vios *[]violation) {
	info := c.pass.TypesInfo
	params := sig.Params()
	if params.Len() == 0 {
		return
	}
	for i, arg := range call.Args {
		var pt types.Type
		switch {
		case sig.Variadic() && i >= params.Len()-1:
			if call.Ellipsis.IsValid() {
				pt = params.At(params.Len() - 1).Type() // slice passed whole
			} else if sl, ok := params.At(params.Len() - 1).Type().(*types.Slice); ok {
				pt = sl.Elem()
			}
		case i < params.Len():
			pt = params.At(i).Type()
		}
		if pt == nil {
			continue
		}
		if _, isIface := pt.Underlying().(*types.Interface); !isIface {
			continue
		}
		if boxes(info, arg) {
			*vios = append(*vios, violation{pos: arg.Pos(), msg: "interface boxing of a non-pointer value allocates on the hot path; pass a pointer or avoid the interface"})
		}
	}
}

// boxes reports whether passing expr to an interface heap-allocates: a
// concrete value that is not pointer-shaped and not a constant nil.
func boxes(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[ast.Unparen(expr)]
	if !ok || tv.IsNil() {
		return false
	}
	t := tv.Type
	if t == nil {
		return false
	}
	switch t.Underlying().(type) {
	case *types.Interface, *types.Pointer, *types.Chan, *types.Map, *types.Signature, *types.TypeParam:
		return false
	}
	if b, ok := t.Underlying().(*types.Basic); ok && b.Kind() == types.UnsafePointer {
		return false
	}
	// Constant small integers come from the runtime's static cache, and
	// zero-size values box for free; everything else copies to the heap.
	if tv.Value != nil {
		if b, ok := t.Underlying().(*types.Basic); ok && b.Info()&types.IsInteger != 0 {
			return false
		}
	}
	return true
}

// conversionViolation flags string<->[]byte conversions.
func conversionViolation(info *types.Info, call *ast.CallExpr, target types.Type) (violation, bool) {
	src, ok := info.Types[call.Args[0]]
	if !ok {
		return violation{}, false
	}
	if isString(target) && isByteSlice(src.Type) {
		return violation{pos: call.Pos(), msg: "string([]byte) conversion copies on the hot path; keep bytes as bytes or intern"}, true
	}
	if isByteSlice(target) && isString(src.Type) {
		return violation{pos: call.Pos(), msg: "[]byte(string) conversion copies on the hot path; keep the string or reuse a scratch buffer"}, true
	}
	return violation{}, false
}

func isString(t types.Type) bool {
	b, ok := t.Underlying().(*types.Basic)
	return ok && b.Info()&types.IsString != 0
}

func isByteSlice(t types.Type) bool {
	sl, ok := t.Underlying().(*types.Slice)
	if !ok {
		return false
	}
	b, ok := sl.Elem().Underlying().(*types.Basic)
	return ok && b.Kind() == types.Byte
}

// compositeViolation flags heap composite literals: slice and map
// literals always allocate backing storage; &T{...} allocates T on the
// heap. Plain struct/array value literals live in registers or on the
// stack and pass.
func (c *checker) compositeViolation(cl *ast.CompositeLit, addressed bool) (violation, bool) {
	tv, ok := c.pass.TypesInfo.Types[cl]
	if !ok {
		return violation{}, false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Slice:
		if len(cl.Elts) == 0 {
			// x := []T{} is handled (better) by the fresh-slice append
			// check; an empty literal alone allocates nothing observable.
			return violation{}, false
		}
		return violation{pos: cl.Pos(), msg: "slice literal allocates on the hot path; preallocate the backing array outside the loop or reuse scratch"}, true
	case *types.Map:
		return violation{pos: cl.Pos(), msg: "map literal allocates on the hot path; hoist it to a package var or pooled scratch"}, true
	}
	if addressed {
		return violation{pos: cl.Pos(), msg: "&composite literal escapes to the heap on the hot path; use a value or pooled scratch"}, true
	}
	return violation{}, false
}

// makeViolation flags make(map)/make(chan); make([]T, n[, cap]) is the
// prescribed preallocation idiom and passes.
func makeViolation(info *types.Info, call *ast.CallExpr) (violation, bool) {
	if len(call.Args) == 0 {
		return violation{}, false
	}
	tv, ok := info.Types[call.Args[0]]
	if !ok {
		return violation{}, false
	}
	switch tv.Type.Underlying().(type) {
	case *types.Map:
		return violation{pos: call.Pos(), msg: "make(map) allocates on the hot path; hoist it or carry it in pooled scratch"}, true
	case *types.Chan:
		return violation{pos: call.Pos(), msg: "make(chan) allocates on the hot path"}, true
	}
	return violation{}, false
}

// freshSlices finds local slice variables declared with no backing
// capacity — var s []T, s := []T{}, s := make([]T, 0) — which make any
// later append a reallocation cascade. The violation is prepared at the
// declaration (the right place to preallocate) and reported only if an
// append on the variable is actually seen. A SuggestedFix rewrites the
// initializer to a capacity make; the capacity itself is a judgment
// call, so the fix leaves a TODO marker.
func (c *checker) freshSlices(body *ast.BlockStmt) map[types.Object]*violation {
	info := c.pass.TypesInfo
	fresh := map[types.Object]*violation{}
	record := func(name *ast.Ident, at ast.Node, fixable ast.Expr) {
		obj := info.ObjectOf(name)
		if obj == nil {
			return
		}
		if _, ok := obj.Type().Underlying().(*types.Slice); !ok {
			return
		}
		v := &violation{
			pos: at.Pos(),
			msg: fmt.Sprintf("append growth on %s, declared without capacity, reallocates on the hot path; preallocate with make(%s, 0, n)", name.Name, types.TypeString(obj.Type(), types.RelativeTo(c.pass.Pkg))),
		}
		if fixable != nil {
			v.fix = []analysis.SuggestedFix{{
				Message: "preallocate with an explicit capacity",
				TextEdits: []analysis.TextEdit{{
					Pos:     fixable.Pos(),
					End:     fixable.End(),
					NewText: []byte(fmt.Sprintf("make(%s, 0, 16 /* TODO: right-size */)", types.TypeString(obj.Type(), types.RelativeTo(c.pass.Pkg)))),
				}},
			}}
		}
		fresh[obj] = v
	}
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok || gd.Tok != token.VAR {
				return true
			}
			for _, spec := range gd.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok || len(vs.Values) != 0 {
					continue
				}
				for _, name := range vs.Names {
					record(name, vs, nil)
				}
			}
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE || len(n.Lhs) != len(n.Rhs) {
				return true
			}
			for i, lhs := range n.Lhs {
				name, ok := lhs.(*ast.Ident)
				if !ok {
					continue
				}
				rhs := ast.Unparen(n.Rhs[i])
				switch r := rhs.(type) {
				case *ast.CompositeLit:
					if len(r.Elts) == 0 {
						if _, isSlice := info.Types[r].Type.Underlying().(*types.Slice); isSlice {
							record(name, n, rhs)
						}
					}
				case *ast.CallExpr:
					if id, ok := ast.Unparen(r.Fun).(*ast.Ident); ok {
						if b, isB := info.ObjectOf(id).(*types.Builtin); isB && b.Name() == "make" && len(r.Args) == 2 {
							if tv, ok := info.Types[r.Args[1]]; ok && tv.Value != nil && tv.Value.String() == "0" {
								record(name, n, rhs)
							}
						}
					}
				}
			}
		}
		return true
	})
	return fresh
}

// captures names a variable the closure captures from its enclosing
// function, or "" if it captures nothing (a static closure, which does
// not allocate).
func (c *checker) captures(fl *ast.FuncLit) string {
	info := c.pass.TypesInfo
	name := ""
	ast.Inspect(fl.Body, func(n ast.Node) bool {
		if name != "" {
			return false
		}
		id, ok := n.(*ast.Ident)
		if !ok {
			return true
		}
		v, ok := info.Uses[id].(*types.Var)
		if !ok || v.IsField() || v.Pkg() == nil {
			return true
		}
		// Captured: declared outside the literal but not package-level.
		if v.Parent() != nil && v.Parent().Parent() == types.Universe {
			return true // package-level var
		}
		if v.Pos() < fl.Pos() || v.Pos() > fl.End() {
			name = v.Name()
			return false
		}
		return true
	})
	return name
}

// calleeFunc resolves a call to its static *types.Func (package function
// or method), or nil for dynamic calls.
func calleeFunc(info *types.Info, call *ast.CallExpr) *types.Func {
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		fn, _ := info.Uses[fun].(*types.Func)
		return fn
	case *ast.SelectorExpr:
		if sel, ok := info.Selections[fun]; ok {
			if _, isIface := sel.Recv().Underlying().(*types.Interface); isIface {
				return nil // dynamic dispatch: unknowable
			}
		}
		fn, _ := info.Uses[fun.Sel].(*types.Func)
		return fn
	}
	return nil
}

func qualName(fn *types.Func) string {
	if fn.Pkg() == nil {
		return fn.Name()
	}
	return fn.Pkg().Name() + "." + fn.Name()
}

// allocFuncs is the stdlib denylist: package-level functions whose whole
// point is producing new heap objects. "*" denylists a package entirely.
var allocFuncs = map[string]map[string]bool{
	"fmt":    {"*": true},
	"errors": {"New": true},
	"strings": {
		"Join": true, "Split": true, "SplitN": true, "SplitAfter": true,
		"Fields": true, "FieldsFunc": true, "Repeat": true,
		"Replace": true, "ReplaceAll": true, "ToLower": true, "ToUpper": true,
		"ToTitle": true, "Map": true, "Clone": true, "Concat": true,
	},
	"strconv": {
		"Itoa": true, "FormatInt": true, "FormatUint": true,
		"FormatFloat": true, "Quote": true, "QuoteToASCII": true,
	},
	"regexp": {"Compile": true, "MustCompile": true, "CompilePOSIX": true},
	"bytes": {
		"NewBuffer": true, "NewBufferString": true, "NewReader": true,
		"Join": true, "Split": true, "SplitN": true, "Fields": true,
		"Repeat": true, "ToLower": true, "ToUpper": true, "Clone": true,
	},
}

// allocMethods denylists methods by receiver type: the regexp FindAll
// family returns freshly-built slices every call.
var allocMethods = map[string]func(name string) bool{
	"regexp.Regexp": func(name string) bool {
		return strings.HasPrefix(name, "FindAll") || strings.HasPrefix(name, "ReplaceAll") || name == "Split"
	},
	"strings.Builder": func(name string) bool { return name == "String" },
	"time.Time":       func(name string) bool { return name == "Format" || name == "String" },
}

// denylisted returns a reason when the cross-package callee is a known
// allocator, "" otherwise (unknown stdlib calls are assumed clean — the
// denylist is the explicit, reviewable model boundary).
// sameModule reports whether two packages live in the same top-level
// module tree, compared by first import-path segment. This is the fact
// trust boundary: within the module, may-alloc summaries propagate;
// outside it, only the denylist speaks.
func sameModule(a, b *types.Package) bool {
	pa, pb := a.Path(), b.Path()
	if i := strings.IndexByte(pa, '/'); i >= 0 {
		pa = pa[:i]
	}
	if i := strings.IndexByte(pb, '/'); i >= 0 {
		pb = pb[:i]
	}
	return pa == pb
}

func denylisted(info *types.Info, call *ast.CallExpr, callee *types.Func) string {
	pkg := callee.Pkg().Path()
	if names, ok := allocFuncs[pkg]; ok {
		if names["*"] || names[callee.Name()] {
			return "allocating stdlib call"
		}
	}
	if named := kwutil.ReceiverType(info, call); named != nil {
		if obj := named.Obj(); obj != nil && obj.Pkg() != nil {
			if match, ok := allocMethods[obj.Pkg().Path()+"."+obj.Name()]; ok && match(callee.Name()) {
				return "allocating stdlib call"
			}
		}
	}
	return ""
}
