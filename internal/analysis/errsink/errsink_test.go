package errsink_test

import (
	"testing"

	"contextrank/internal/analysis/atest"
	"contextrank/internal/analysis/errsink"
)

func TestErrSink(t *testing.T) {
	atest.Run(t, "../testdata", errsink.Analyzer,
		"internal/serve",
		"internal/resilience",
		"notserve",
	)
}
