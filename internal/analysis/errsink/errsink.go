// Package errsink implements the kwlint analyzer that catches silently
// dropped write errors in the HTTP serve layer.
//
// A handler that ignores the error from json.Encoder.Encode or
// ResponseWriter.Write can ship a truncated body and still account the
// request as a success — the serve layer's throughput counters and the
// client disagree about what happened. Inside the -packages scope every
// such error must be consumed: checked, or explicitly discarded with an
// assignment to _ (which at least documents the decision).
//
// Flagged when the call is an expression statement (results silently
// dropped) and the callee is one of:
//
//   - (*encoding/json.Encoder).Encode
//   - a Write([]byte) (int, error) method (http.ResponseWriter, io.Writer)
//   - a WriteString method returning (int, error)
//   - io.WriteString, io.Copy
//   - fmt.Fprint / Fprintf / Fprintln
//
// Calls on bytes.Buffer and strings.Builder are exempt — their writes
// are documented to never return an error. _test.go files are NOT
// exempt: a test helper that drops a write error hides the same
// truncation bugs in the fixtures it builds.
package errsink

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"contextrank/internal/analysis/kwutil"
)

// DefaultPackages scopes the analyzer to the HTTP serve layer and the
// resilience middleware that wraps it — a dropped write error in the
// chaos/recovery path would silently desynchronize the fault counters
// the CI chaos job asserts on.
const DefaultPackages = "internal/serve,internal/resilience"

var scope = kwutil.NewScope(DefaultPackages)

var Analyzer = &analysis.Analyzer{
	Name: "errsink",
	Doc: "flag dropped errors from Encode/Write calls in HTTP handlers\n\n" +
		"Handlers must check (or explicitly discard with _ =) the error from json.Encoder.Encode, ResponseWriter.Write, io.WriteString, and fmt.Fprint*.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.Var(scope, "packages", "comma-separated import-path suffixes to check")
}

var fmtSinks = map[string]bool{"Fprint": true, "Fprintf": true, "Fprintln": true}
var ioSinks = map[string]bool{"WriteString": true, "Copy": true}

func run(pass *analysis.Pass) (interface{}, error) {
	sup := kwutil.NewSuppressor(pass, "errsink")
	defer sup.Finish()
	if !scope.InScope(pass) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.ExprStmt)(nil)}, func(n ast.Node) {
		call, ok := ast.Unparen(n.(*ast.ExprStmt).X).(*ast.CallExpr)
		if !ok {
			return
		}
		if name := sinkName(pass.TypesInfo, call); name != "" {
			sup.Reportf(call.Pos(), "error from %s is silently dropped; handle it or discard explicitly with _ =", name)
		}
	})

	return nil, nil
}

// sinkName reports the human-readable callee name when the call is a
// write sink whose error result would be dropped, or "" otherwise.
func sinkName(info *types.Info, call *ast.CallExpr) string {
	// Package-level sinks: fmt.Fprint*, io.WriteString, io.Copy.
	if pkg, name := kwutil.PkgFunc(info, call.Fun); pkg != "" {
		switch {
		case pkg == "fmt" && fmtSinks[name]:
			return "fmt." + name
		case pkg == "io" && ioSinks[name]:
			return "io." + name
		}
		return ""
	}

	// Method sinks: Encode on *json.Encoder, Write/WriteString returning
	// (int, error) on anything except the never-failing buffer types.
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok {
		return ""
	}
	fn, ok := info.Uses[sel.Sel].(*types.Func)
	if !ok {
		return ""
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.Recv() == nil || !lastResultIsError(sig) {
		return ""
	}
	recv := kwutil.ReceiverType(info, call)
	if kwutil.NamedIs(recv, "bytes", "Buffer") || kwutil.NamedIs(recv, "strings", "Builder") {
		return ""
	}
	switch fn.Name() {
	case "Encode":
		if kwutil.NamedIs(recv, "encoding/json", "Encoder") {
			return "json.Encoder.Encode"
		}
	case "Write", "WriteString":
		return "(" + types.TypeString(info.Types[sel.X].Type, types.RelativeTo(fn.Pkg())) + ")." + fn.Name()
	}
	return ""
}

func lastResultIsError(sig *types.Signature) bool {
	res := sig.Results()
	if res.Len() == 0 {
		return false
	}
	last := res.At(res.Len() - 1).Type()
	named, ok := last.(*types.Named)
	return ok && named.Obj() != nil && named.Obj().Name() == "error" && named.Obj().Pkg() == nil
}
