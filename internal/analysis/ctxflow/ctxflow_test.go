package ctxflow_test

import (
	"testing"

	"contextrank/internal/analysis/atest"
	"contextrank/internal/analysis/ctxflow"
)

func TestCtxflow(t *testing.T) {
	// ctxflowfix/internal/serve sits inside the scope and exercises
	// root-context minting, time.After, and timer Stop pairing;
	// ctxflownot commits the same constructs out of scope.
	atest.Run(t, "../testdata", ctxflow.Analyzer,
		"ctxflowfix/internal/serve",
		"ctxflownot",
	)
}
