// Package ctxflow implements the kwlint analyzer that keeps the request
// path context-threaded: inside the serve, resilience, and cluster
// routing layers, no code may mint a fresh root context, and every timer
// must have a cleanup path.
//
// The resilience layer's whole contract (DESIGN.md §8) is that
// deadlines, admission decisions, and degradation flags ride the
// request's context.Context; a context.Background() (or TODO()) past the
// handler boundary detaches everything downstream from the caller's
// deadline — timeouts stop propagating, chaos injection loses its
// per-request seed, load-shedding can no longer cancel. Similarly,
// time.After leaks its timer until it fires (a slow drip under load,
// exactly where the gate timers run per-request), and a time.NewTimer /
// time.NewTicker without a Stop leaks its channel machinery on every
// early return.
//
// Rules, inside the -packages scope (production files only — tests
// construct context roots by definition):
//
//   - context.Background() / context.TODO() are reports; thread the ctx
//     parameter instead, or suppress with a reasoned //kwlint:ignore at
//     a genuine process-lifetime root;
//   - time.After is always a report (use NewTimer + defer Stop);
//   - time.NewTimer / time.NewTicker must have a .Stop() call on the
//     assigned variable somewhere in the same function.
package ctxflow

import (
	"go/ast"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"contextrank/internal/analysis/kwutil"
)

// DefaultPackages scopes the analyzer to the layers whose contract is
// context threading: the HTTP serve layer, the resilience middleware, and
// the cluster routing tier (router + cmd/router), where a detached
// context would sever failover and hedge cancellation from the request
// budget.
const DefaultPackages = "internal/serve,internal/resilience,internal/cluster,cmd/router"

var scope = kwutil.NewScope(DefaultPackages)

var Analyzer = &analysis.Analyzer{
	Name: "ctxflow",
	Doc: "keep the request path context-threaded, timers cleaned up\n\n" +
		"Inside the scope: no context.Background()/context.TODO() (thread the caller's ctx), no time.After (its timer leaks until it fires), and every time.NewTimer/NewTicker needs a Stop call in the same function.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.Var(scope, "packages", "comma-separated import-path suffixes to check")
}

func run(pass *analysis.Pass) (interface{}, error) {
	sup := kwutil.NewSuppressor(pass, "ctxflow")
	defer sup.Finish()
	if !scope.InScope(pass) {
		return nil, nil
	}

	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// Per-function timer bookkeeping: declared timers and Stop calls.
	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil)}, func(n ast.Node) {
		fd := n.(*ast.FuncDecl)
		if fd.Body == nil || kwutil.IsTestFile(pass.Fset, fd.Pos()) {
			return
		}
		checkFunc(pass, sup, fd)
	})

	return nil, nil
}

func checkFunc(pass *analysis.Pass, sup *kwutil.Suppressor, fd *ast.FuncDecl) {
	info := pass.TypesInfo

	type timer struct {
		obj  interface{}   // types.Object of the bound variable
		call *ast.CallExpr // the constructor call, for reporting
		kind string        // "NewTimer" or "NewTicker"
	}
	var timers []timer // slice: reports stay in source order
	stopped := map[interface{}]bool{}

	ast.Inspect(fd, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			pkg, name := kwutil.PkgFunc(info, n.Fun)
			switch {
			case pkg == "context" && (name == "Background" || name == "TODO"):
				sup.Reportf(n.Pos(), "context.%s() detaches the request path from its caller's deadline; thread the ctx parameter instead", name)
			case pkg == "time" && name == "After":
				sup.Reportf(n.Pos(), "time.After leaks its timer until it fires; use time.NewTimer with a deferred Stop")
			}
			// t.Stop() on any variable counts as its cleanup.
			if sel, ok := ast.Unparen(n.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Stop" {
				if id, ok := ast.Unparen(sel.X).(*ast.Ident); ok {
					if obj := info.ObjectOf(id); obj != nil {
						stopped[obj] = true
					}
				}
			}
		case *ast.AssignStmt:
			for i, rhs := range n.Rhs {
				if i >= len(n.Lhs) {
					break
				}
				call, ok := ast.Unparen(rhs).(*ast.CallExpr)
				if !ok {
					continue
				}
				pkg, name := kwutil.PkgFunc(info, call.Fun)
				if pkg != "time" || (name != "NewTimer" && name != "NewTicker") {
					continue
				}
				id, ok := ast.Unparen(n.Lhs[i]).(*ast.Ident)
				if !ok || id.Name == "_" {
					sup.Reportf(call.Pos(), "time.%s result must be bound to a variable so it can be Stopped", name)
					continue
				}
				if obj := info.ObjectOf(id); obj != nil {
					timers = append(timers, timer{obj: obj, call: call, kind: name})
				}
			}
		}
		return true
	})

	// Unbound constructor uses (<-time.NewTimer(d).C) have no handle to
	// stop: find constructor calls that are not the RHS of an assignment
	// we recorded. Walk again, skipping recorded ones.
	recorded := map[*ast.CallExpr]bool{}
	for _, t := range timers {
		recorded[t.call] = true
	}
	ast.Inspect(fd, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || recorded[call] {
			return true
		}
		pkg, name := kwutil.PkgFunc(info, call.Fun)
		if pkg == "time" && (name == "NewTimer" || name == "NewTicker") {
			sup.Reportf(call.Pos(), "time.%s used without binding its result; the timer can never be Stopped", name)
		}
		return true
	})

	for _, t := range timers {
		if !stopped[t.obj] {
			sup.Reportf(t.call.Pos(), "time.%s without a Stop call in this function; defer t.Stop() to release the timer on every path", t.kind)
		}
	}
}
