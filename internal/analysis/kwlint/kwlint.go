// Package kwlint bundles the project's go/analysis suite: the analyzers
// that mechanically enforce the reproduction's determinism and hygiene
// contracts. See cmd/kwlint for the driver.
package kwlint

import (
	"golang.org/x/tools/go/analysis"

	"contextrank/internal/analysis/determinism"
	"contextrank/internal/analysis/errsink"
	"contextrank/internal/analysis/floatcompare"
	"contextrank/internal/analysis/orderedfanout"
	"contextrank/internal/analysis/seededrand"
)

// Analyzers returns the full kwlint suite in a stable order.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		orderedfanout.Analyzer,
		seededrand.Analyzer,
		floatcompare.Analyzer,
		errsink.Analyzer,
	}
}
