// Package kwlint bundles the project's go/analysis suite: the analyzers
// that mechanically enforce the reproduction's determinism, hygiene, and
// annotation-driven contracts (DESIGN.md §9). See cmd/kwlint for the
// driver.
package kwlint

import (
	"golang.org/x/tools/go/analysis"

	"contextrank/internal/analysis/ctxflow"
	"contextrank/internal/analysis/determinism"
	"contextrank/internal/analysis/errsink"
	"contextrank/internal/analysis/floatcompare"
	"contextrank/internal/analysis/frozen"
	"contextrank/internal/analysis/hotpath"
	"contextrank/internal/analysis/lockguard"
	"contextrank/internal/analysis/orderedfanout"
	"contextrank/internal/analysis/poolalias"
	"contextrank/internal/analysis/seededrand"
)

// Analyzers returns the full kwlint suite in a stable order. The order
// (and the names) must match kwutil.AnalyzerNames, which the ignore
// validator and the CI name-sync test treat as the source of truth;
// kwlint_test.go asserts the two stay aligned.
func Analyzers() []*analysis.Analyzer {
	return []*analysis.Analyzer{
		determinism.Analyzer,
		orderedfanout.Analyzer,
		seededrand.Analyzer,
		floatcompare.Analyzer,
		errsink.Analyzer,
		hotpath.Analyzer,
		poolalias.Analyzer,
		lockguard.Analyzer,
		frozen.Analyzer,
		ctxflow.Analyzer,
	}
}
