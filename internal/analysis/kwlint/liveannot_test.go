package kwlint_test

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"testing"
)

// liveAnnotations is the pinned manifest of every //kw: directive in
// the production tree: which declaration carries which contract. The
// static-analysis suite only enforces a contract where an annotation
// exists, so a silently deleted annotation would silently disable
// enforcement — this test turns that into a loud failure. If you
// intentionally add, move, or remove a directive, update this manifest
// AND the contract matrix in DESIGN.md §9.
//
// Keys are repo-root-relative files; entries are "decl directive",
// with methods and fields qualified by their receiver/struct type.
var liveAnnotations = map[string][]string{
	"internal/clickgraph/csr.go": {
		"side.openRow //kw:hotpath",
		"side.skipRowsFrom //kw:hotpath",
		"side.iterInto //kw:hotpath",
		"side.cursorInto //kw:hotpath",
		"side.startRow //kw:hotpath",
		"rowIter.next //kw:hotpath",
	},
	"internal/clickgraph/graph.go": {
		"Graph //kw:frozen-after(Freeze)",
		"Graph.InternConcept //kw:builder",
		"Graph.InternStory //kw:builder",
		"Graph.AddClicksID //kw:builder",
		"Graph.AddClicks //kw:builder",
		"Graph.AddReport //kw:builder",
		"Graph.FreezeWorkers //kw:builder",
	},
	"internal/clickgraph/query.go": {
		"Graph.topConcepts //kw:fresh",
	},
	"internal/cluster/router.go": {
		"Router.flights //kw:guardedby(fmu)",
	},
	"internal/core/system.go": {
		"System.extendedCache //kw:guardedby(cacheMu)",
		"System.fieldsCache //kw:guardedby(cacheMu)",
	},
	"internal/detect/detect.go": {
		"Pipeline.Detect //kw:hotpath",
		"allStopwords //kw:coldpath",
		"resolveCollisions //kw:fresh",
	},
	"internal/framework/runtime.go": {
		"Runtime.AnnotateCtx //kw:hotpath",
	},
	"internal/match/match.go": {
		"Matcher.AppendMatches //kw:hotpath",
		"Matcher.LongestAt //kw:hotpath",
		"Vocab.AppendIDs //kw:hotpath",
	},
	"internal/ranksvm/ranksvm.go": {
		"Model.ScoreBuf //kw:hotpath",
	},
	"internal/searchsim/cache.go": {
		"countShard.m //kw:guardedby(mu)",
	},
	"internal/resilience/breaker.go": {
		"Breaker.state //kw:guardedby(mu)",
		"Breaker.consecFails //kw:guardedby(mu)",
		"Breaker.remainingSkips //kw:guardedby(mu)",
		"Breaker.opens //kw:guardedby(mu)",
		"Breaker.open //kw:holds(mu)",
	},
	"internal/resilience/quota.go": {
		"Quota.buckets //kw:guardedby(mu)",
	},
	"internal/relevance/interned.go": {
		"Miner.finalizeIDs //kw:fresh",
	},
	"internal/searchsim/engine.go": {
		"view.firstOccurrence //kw:hotpath",
		"view.rankHits //kw:fresh",
	},
	"internal/searchsim/index.go": {
		"view.countPhraseDocs //kw:hotpath",
		"view.intersectCount //kw:hotpath",
		"view.phraseHits //kw:hotpath",
		"termCursor.loadBlockBitmap //kw:hotpath",
	},
	"internal/searchsim/segment.go": {
		"segment //kw:frozen-after(seal)",
	},
	"internal/serve/cache.go": {
		"cacheShard.entries //kw:guardedby(mu)",
		"cacheShard.flights //kw:guardedby(mu)",
		"cacheShard.lru //kw:guardedby(mu)",
	},
	"internal/taxonomy/taxonomy.go": {
		"Dictionary.FindInIDs //kw:hotpath",
	},
	"internal/units/units.go": {
		"Set.FindInIDs //kw:hotpath",
	},
	"internal/world/compose.go": {
		"World.ComposeDoc //kw:fresh",
	},
}

// TestLiveAnnotationsPresent re-parses every manifest file and fails on
// any drift in either direction: a deleted or moved annotation (the
// contract would stop being enforced) and an undeclared new one (the
// manifest and the DESIGN.md matrix would go stale).
func TestLiveAnnotationsPresent(t *testing.T) {
	for file, want := range liveAnnotations {
		got := collectDirectives(t, filepath.Join("..", "..", "..", file))
		sortedWant := append([]string(nil), want...)
		sort.Strings(sortedWant)
		sort.Strings(got)
		if !equalStrings(got, sortedWant) {
			t.Errorf("%s: //kw: annotations drifted\n  got:  %v\n  want: %v\nupdate liveAnnotations and DESIGN.md §9 if this is intentional", file, got, sortedWant)
		}
	}
}

// TestLiveAnnotationManifestComplete sweeps the whole production tree
// so a //kw: directive added in a file the manifest has never heard of
// still shows up here. The analysis tree itself (fixtures, analyzer
// sources mentioning directives in strings) and test files are out of
// scope — the manifest tracks production contracts only.
func TestLiveAnnotationManifestComplete(t *testing.T) {
	root := filepath.Join("..", "..", "..")
	for _, top := range []string{"internal", "cmd"} {
		err := filepath.WalkDir(filepath.Join(root, top), func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if d.IsDir() {
				if d.Name() == "analysis" || d.Name() == "testdata" || d.Name() == "vendor" {
					return filepath.SkipDir
				}
				return nil
			}
			if !strings.HasSuffix(path, ".go") || strings.HasSuffix(path, "_test.go") {
				return nil
			}
			src, err := os.ReadFile(path)
			if err != nil {
				return err
			}
			if !strings.Contains(string(src), "//kw:") {
				return nil
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			if _, ok := liveAnnotations[filepath.ToSlash(rel)]; !ok {
				t.Errorf("%s carries //kw: directives but is not in the liveAnnotations manifest", rel)
			}
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
	}
}

// collectDirectives parses file and returns every //kw: directive bound
// to a declaration, as "decl //kw:verb" strings. Binding mirrors how
// the analyzers read annotations: a directive line inside the doc
// comment of a func, type, or struct field.
func collectDirectives(t *testing.T, file string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, file, nil, parser.ParseComments)
	if err != nil {
		t.Fatal(err)
	}
	var out []string
	ast.Inspect(f, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.FuncDecl:
			for _, d := range kwDirectives(n.Doc) {
				out = append(out, recvPrefix(n)+n.Name.Name+" "+d)
			}
		case *ast.GenDecl:
			// A directive on `type Foo struct {...}` parses as the
			// GenDecl's doc when the spec has no doc of its own.
			if ts, ok := firstTypeSpec(n); ok {
				for _, d := range kwDirectives(n.Doc) {
					out = append(out, ts.Name.Name+" "+d)
				}
			}
		case *ast.TypeSpec:
			for _, d := range kwDirectives(n.Doc) {
				out = append(out, n.Name.Name+" "+d)
			}
			if st, ok := n.Type.(*ast.StructType); ok {
				for _, fl := range st.Fields.List {
					for _, d := range kwDirectives(fl.Doc) {
						for _, name := range fl.Names {
							out = append(out, n.Name.Name+"."+name.Name+" "+d)
						}
					}
				}
			}
		}
		return true
	})
	return out
}

func kwDirectives(cg *ast.CommentGroup) []string {
	if cg == nil {
		return nil
	}
	var out []string
	for _, c := range cg.List {
		if strings.HasPrefix(c.Text, "//kw:") {
			out = append(out, c.Text)
		}
	}
	return out
}

func recvPrefix(fd *ast.FuncDecl) string {
	if fd.Recv == nil || len(fd.Recv.List) == 0 {
		return ""
	}
	typ := fd.Recv.List[0].Type
	for {
		switch x := typ.(type) {
		case *ast.StarExpr:
			typ = x.X
		case *ast.IndexExpr: // generic receiver
			typ = x.X
		case *ast.Ident:
			return x.Name + "."
		default:
			return fmt.Sprintf("%T.", typ)
		}
	}
}

func firstTypeSpec(gd *ast.GenDecl) (*ast.TypeSpec, bool) {
	if gd.Tok != token.TYPE || len(gd.Specs) != 1 {
		return nil, false
	}
	ts, ok := gd.Specs[0].(*ast.TypeSpec)
	return ts, ok
}

func equalStrings(a, b []string) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
