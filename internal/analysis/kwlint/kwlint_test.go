package kwlint_test

import (
	"testing"

	"contextrank/internal/analysis/kwlint"
	"contextrank/internal/analysis/kwutil"
)

// TestSuite pins the analyzer roster against kwutil.AnalyzerNames, the
// shared source of truth: CI runs exactly these, in this order, the
// ignore validator accepts exactly these names, and each analyzer must
// be valid per the go/analysis contract.
func TestSuite(t *testing.T) {
	want := kwutil.AnalyzerNames
	got := kwlint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d (kwutil.AnalyzerNames)", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %s, want %s (kwutil.AnalyzerNames order)", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s is missing Doc or Run", a.Name)
		}
	}
}
