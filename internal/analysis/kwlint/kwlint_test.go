package kwlint_test

import (
	"testing"

	"contextrank/internal/analysis/kwlint"
)

// TestSuite pins the analyzer roster: CI runs exactly these, in this
// order, and each must be valid per the go/analysis contract.
func TestSuite(t *testing.T) {
	want := []string{"determinism", "orderedfanout", "seededrand", "floatcompare", "errsink"}
	got := kwlint.Analyzers()
	if len(got) != len(want) {
		t.Fatalf("got %d analyzers, want %d", len(got), len(want))
	}
	for i, a := range got {
		if a.Name != want[i] {
			t.Errorf("analyzer %d = %s, want %s", i, a.Name, want[i])
		}
		if a.Doc == "" || a.Run == nil {
			t.Errorf("analyzer %s is missing Doc or Run", a.Name)
		}
	}
}
