package kwlint_test

import (
	"os"
	"path/filepath"
	"strings"
	"testing"

	"contextrank/internal/analysis/kwlint"
)

// TestSuiteRosterInSync keeps the two human-facing copies of the
// analyzer roster — the CI step name and the Makefile lint comment —
// honest against the real suite. Both documents enumerate the analyzers
// so a reader learns the roster without opening the code; this test is
// the price of that duplication: add an analyzer and CI fails until the
// prose catches up.
func TestSuiteRosterInSync(t *testing.T) {
	names := make([]string, 0, len(kwlint.Analyzers()))
	for _, a := range kwlint.Analyzers() {
		names = append(names, a.Name)
	}

	t.Run("ci.yml", func(t *testing.T) {
		data := readRepoFile(t, ".github/workflows/ci.yml")
		// The step name states the roster verbatim, in suite order.
		want := "kwlint (" + strings.Join(names, ", ") + ")"
		if !strings.Contains(data, want) {
			t.Errorf("ci.yml kwlint step name is out of date: no step named %q", want)
		}
		// And kwlint must be its own job, not a step buried elsewhere.
		if !strings.Contains(data, "\n  kwlint:\n") {
			t.Errorf("ci.yml has no dedicated kwlint job")
		}
	})

	t.Run("Makefile", func(t *testing.T) {
		data := readRepoFile(t, "Makefile")
		i := strings.Index(data, "\nlint:")
		if i < 0 {
			t.Fatalf("Makefile has no lint target")
		}
		// The roster lives in the comment block directly above lint:.
		comment := data[:i]
		if j := strings.LastIndex(comment, "\n\n"); j >= 0 {
			comment = comment[j:]
		}
		for _, n := range names {
			if !strings.Contains(comment, n) {
				t.Errorf("Makefile lint comment does not mention analyzer %q", n)
			}
		}
	})
}

// readRepoFile loads a file by repo-root-relative path; the test binary
// runs in internal/analysis/kwlint, three directories down.
func readRepoFile(t *testing.T, rel string) string {
	t.Helper()
	data, err := os.ReadFile(filepath.Join("..", "..", "..", rel))
	if err != nil {
		t.Fatal(err)
	}
	return string(data)
}
