// Package seededrand implements the kwlint analyzer that enforces seed
// injection: every random source must be constructed from a seed the
// caller controls.
//
// Reproducing the paper's experiments requires re-running any component
// with the same seed and getting the same bytes out. A rand.NewSource(42)
// buried in a function body can never be re-seeded from the outside, and
// rand.NewSource(time.Now().UnixNano()) is different on every run. Both
// are flagged; seeds must flow in through a parameter, a config field, or
// a flag.
//
// The rule: the seed argument of rand.NewSource / rand.NewPCG /
// rand.NewChaCha8 must not be a compile-time constant (including a local
// variable that is only ever assigned a constant) and must not be derived
// from time.Now. In _test.go files only the constant branch is exempt —
// tests pin seeds by design — but a time-derived seed makes a test
// unreproducible and is flagged everywhere.
package seededrand

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"contextrank/internal/analysis/kwutil"
)

var Analyzer = &analysis.Analyzer{
	Name: "seededrand",
	Doc: "require random sources to be built from injected seeds\n\n" +
		"Flags rand.NewSource(<constant>) and rand.NewSource(time.Now()...): hard-coded seeds cannot be varied by the experiment harness and wall-clock seeds destroy reproducibility. Pass the seed in as a parameter, config field, or flag.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

// seedConstructors maps math/rand (v1 and v2) constructor names that take
// seed arguments.
var seedConstructors = map[string]bool{"NewSource": true, "NewPCG": true, "NewChaCha8": true}

func run(pass *analysis.Pass) (interface{}, error) {
	sup := kwutil.NewSuppressor(pass, "seededrand")
	defer sup.Finish()
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	// funcStack tracks the enclosing function bodies so constant
	// propagation for local seed variables stays function-local.
	var funcStack []ast.Node

	ins.Nodes([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil), (*ast.CallExpr)(nil)}, func(n ast.Node, push bool) bool {
		switch n.(type) {
		case *ast.FuncDecl, *ast.FuncLit:
			if push {
				funcStack = append(funcStack, n)
			} else {
				funcStack = funcStack[:len(funcStack)-1]
			}
			return true
		}
		if !push {
			return true
		}
		call := n.(*ast.CallExpr)
		pkg, name := kwutil.PkgFunc(pass.TypesInfo, call.Fun)
		if (pkg != "math/rand" && pkg != "math/rand/v2") || !seedConstructors[name] {
			return true
		}
		var encl ast.Node
		if len(funcStack) > 0 {
			encl = funcStack[len(funcStack)-1]
		}
		inTest := kwutil.IsTestFile(pass.Fset, n.Pos())
		for _, arg := range call.Args {
			switch {
			case isEffectivelyConstant(pass.TypesInfo, arg, encl):
				// Tests pin seeds by design: the constant branch only
				// applies to production files.
				if !inTest {
					sup.Reportf(arg.Pos(), "hard-coded seed for rand.%s; inject the seed via a parameter, config field, or flag", name)
				}
			case kwutil.ContainsTimeNow(pass.TypesInfo, arg):
				sup.Reportf(arg.Pos(), "time-derived seed for rand.%s breaks reproducibility; inject a fixed seed via a parameter, config field, or flag", name)
			}
		}
		return true
	})

	return nil, nil
}

// isEffectivelyConstant reports whether the seed expression is a
// compile-time constant, or an identifier for a local variable of the
// enclosing function that is only ever assigned constants — i.e. a seed
// nobody outside the function can change.
func isEffectivelyConstant(info *types.Info, expr ast.Expr, enclosing ast.Node) bool {
	expr = ast.Unparen(expr)
	if tv, ok := info.Types[expr]; ok && tv.Value != nil {
		return true
	}
	id, ok := expr.(*ast.Ident)
	if !ok || enclosing == nil {
		return false
	}
	obj := info.ObjectOf(id)
	v, ok := obj.(*types.Var)
	if !ok {
		return false
	}
	// The variable must be declared inside the enclosing function (a
	// package-level var can be set by flag.Parse or main wiring).
	if enclosing.Pos() > v.Pos() || v.Pos() > enclosing.End() {
		return false
	}
	constOnly := true
	seen := false
	ast.Inspect(enclosing, func(n ast.Node) bool {
		if !constOnly {
			return false
		}
		switch n := n.(type) {
		case *ast.AssignStmt:
			for i, lhs := range n.Lhs {
				lid, ok := ast.Unparen(lhs).(*ast.Ident)
				if !ok || info.ObjectOf(lid) != obj {
					continue
				}
				seen = true
				if len(n.Rhs) != len(n.Lhs) {
					constOnly = false // multi-value: assume dynamic
					continue
				}
				if tv, ok := info.Types[n.Rhs[i]]; !ok || tv.Value == nil {
					constOnly = false
				}
			}
		case *ast.ValueSpec:
			for i, lhs := range n.Names {
				if info.ObjectOf(lhs) != obj {
					continue
				}
				seen = true
				if i >= len(n.Values) {
					if len(n.Values) != 0 {
						constOnly = false
					}
					continue // var seed int64 — zero value, constant
				}
				if tv, ok := info.Types[n.Values[i]]; !ok || tv.Value == nil {
					constOnly = false
				}
			}
		case *ast.UnaryExpr:
			// &seed escaping means anything can write it.
			if n.Op.String() == "&" {
				if lid, ok := ast.Unparen(n.X).(*ast.Ident); ok && info.ObjectOf(lid) == obj {
					constOnly = false
				}
			}
		case *ast.IncDecStmt:
			if lid, ok := ast.Unparen(n.X).(*ast.Ident); ok && info.ObjectOf(lid) == obj {
				constOnly = false
			}
		}
		return true
	})
	return seen && constOnly
}
