package seededrand_test

import (
	"testing"

	"contextrank/internal/analysis/atest"
	"contextrank/internal/analysis/seededrand"
)

func TestSeededRand(t *testing.T) {
	atest.Run(t, "../testdata", seededrand.Analyzer, "seededrand")
}
