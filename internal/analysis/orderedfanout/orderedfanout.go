// Package orderedfanout implements the kwlint analyzer that keeps worker
// fan-out deterministic.
//
// The pipeline's parallelism contract (internal/par, DESIGN.md) is that
// results are always collected by *input index*, never by arrival order:
// a bounded pool writes result i into slot i, so the merged output is
// bit-identical for every worker count and schedule. The classic way to
// break that contract is the idiomatic-looking collector loop
//
//	for r := range results {        // a channel fed by workers
//	    out = append(out, r)        // arrival order = scheduling order
//	}
//
// which threads goroutine scheduling straight into the output. This
// analyzer flags, inside the deterministic-pipeline packages:
//
//  1. appending to a returned slice while ranging over a channel, unless
//     the slice is sorted before it escapes;
//  2. floating-point accumulation (+=, -=, *=, /=) into a variable while
//     ranging over a channel — FP addition does not reassociate, so even
//     a "commutative" sum differs between schedules.
//
// Index-addressed writes (out[r.idx] = r) and integer counters are fine
// and not flagged; par.Map produces the former shape. _test.go files are
// NOT exempt — a test collecting worker results in arrival order is
// flaky for the same reason production code would be; suppress a
// deliberate case with a reasoned //kwlint:ignore.
package orderedfanout

import (
	"go/ast"
	"go/types"

	"golang.org/x/tools/go/analysis"
	"golang.org/x/tools/go/analysis/passes/inspect"
	"golang.org/x/tools/go/ast/inspector"

	"contextrank/internal/analysis/determinism"
	"contextrank/internal/analysis/kwutil"
)

var scope = kwutil.NewScope(determinism.DefaultPackages + ",internal/par")

var Analyzer = &analysis.Analyzer{
	Name: "orderedfanout",
	Doc: "forbid arrival-order result collection from channels in the deterministic pipeline packages\n\n" +
		"Worker results must be collected by input index (par.Map), not in channel-arrival order: appending to a returned slice or accumulating floats while ranging over a channel makes the output depend on goroutine scheduling.",
	Requires: []*analysis.Analyzer{inspect.Analyzer},
	Run:      run,
}

func init() {
	Analyzer.Flags.Var(scope, "packages", "comma-separated import-path suffixes to check")
}

func run(pass *analysis.Pass) (interface{}, error) {
	sup := kwutil.NewSuppressor(pass, "orderedfanout")
	defer sup.Finish()
	if !scope.InScope(pass) {
		return nil, nil
	}
	ins := pass.ResultOf[inspect.Analyzer].(*inspector.Inspector)

	ins.Preorder([]ast.Node{(*ast.FuncDecl)(nil), (*ast.FuncLit)(nil)}, func(n ast.Node) {
		var body *ast.BlockStmt
		switch fn := n.(type) {
		case *ast.FuncDecl:
			body = fn.Body
		case *ast.FuncLit:
			body = fn.Body
		}
		if body != nil {
			checkChannelCollect(pass, sup, body)
		}
	})

	return nil, nil
}

// checkChannelCollect walks one function body and flags arrival-order
// collection inside `for … := range ch` loops.
func checkChannelCollect(pass *analysis.Pass, sup *kwutil.Suppressor, body *ast.BlockStmt) {
	returned := map[types.Object]bool{}
	sorted := map[types.Object]bool{}

	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.ReturnStmt:
			for _, res := range n.Results {
				for _, obj := range kwutil.IdentObjects(pass.TypesInfo, res) {
					returned[obj] = true
				}
			}
		case *ast.CallExpr:
			if kwutil.IsSortCall(pass.TypesInfo, n) {
				for _, arg := range n.Args {
					for _, obj := range kwutil.IdentObjects(pass.TypesInfo, arg) {
						sorted[obj] = true
					}
				}
			}
		}
		return true
	})

	ast.Inspect(body, func(n ast.Node) bool {
		rng, ok := n.(*ast.RangeStmt)
		if !ok {
			return true
		}
		tv, ok := pass.TypesInfo.Types[rng.X]
		if !ok {
			return true
		}
		if _, isChan := tv.Type.Underlying().(*types.Chan); !isChan {
			return true
		}
		ast.Inspect(rng.Body, func(m ast.Node) bool {
			assign, ok := m.(*ast.AssignStmt)
			if !ok {
				return true
			}
			switch assign.Tok.String() {
			case "=", ":=":
				checkAppend(pass, sup, assign, returned, sorted)
			case "+=", "-=", "*=", "/=":
				checkFloatAccum(pass, sup, assign)
			}
			return true
		})
		return true
	})
}

// checkAppend flags `s = append(s, …)` when s is returned without a sort:
// the caller then sees the results in channel-arrival order.
func checkAppend(pass *analysis.Pass, sup *kwutil.Suppressor, assign *ast.AssignStmt, returned, sorted map[types.Object]bool) {
	for i, rhs := range assign.Rhs {
		call, ok := ast.Unparen(rhs).(*ast.CallExpr)
		if !ok || len(assign.Lhs) <= i {
			continue
		}
		if fun, ok := ast.Unparen(call.Fun).(*ast.Ident); !ok || fun.Name != "append" {
			continue
		}
		lhs, ok := ast.Unparen(assign.Lhs[i]).(*ast.Ident)
		if !ok {
			continue
		}
		obj := pass.TypesInfo.ObjectOf(lhs)
		if obj != nil && returned[obj] && !sorted[obj] {
			sup.Reportf(assign.Pos(), "%s is appended to while ranging over a channel and returned without a sort; results arrive in scheduling order — collect by input index (par.Map) instead", lhs.Name)
		}
	}
}

// checkFloatAccum flags compound float accumulation into a plain variable:
// FP addition is not associative, so the sum depends on arrival order even
// when every contribution is eventually included.
func checkFloatAccum(pass *analysis.Pass, sup *kwutil.Suppressor, assign *ast.AssignStmt) {
	for _, lhs := range assign.Lhs {
		id, ok := ast.Unparen(lhs).(*ast.Ident)
		if !ok {
			continue
		}
		tv, ok := pass.TypesInfo.Types[id]
		if !ok {
			continue
		}
		if basic, ok := tv.Type.Underlying().(*types.Basic); ok && basic.Info()&types.IsFloat != 0 {
			sup.Reportf(assign.Pos(), "floating-point accumulation into %s while ranging over a channel depends on arrival order; compute per-item partials with par.Map and merge them in index order", id.Name)
		}
	}
}
