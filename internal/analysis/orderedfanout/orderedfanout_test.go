package orderedfanout_test

import (
	"testing"

	"contextrank/internal/analysis/atest"
	"contextrank/internal/analysis/orderedfanout"
)

func TestOrderedFanout(t *testing.T) {
	// internal/relevance is in scope and holds both flagging and clean
	// cases; notpipeline collects from channels out of scope.
	atest.Run(t, "../testdata", orderedfanout.Analyzer,
		"internal/relevance",
		"notpipeline",
	)
}
