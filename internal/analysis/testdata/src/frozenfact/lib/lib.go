// Dependency half of the frozen fact fixture: the frozen-after
// annotation must bind importing packages too.
package lib

//kw:frozen-after(Freeze)
type Pack struct {
	IDs    []int
	Sealed bool
}

//kw:builder
func (p *Pack) Add(id int) {
	p.IDs = append(p.IDs, id)
}

func (p *Pack) Freeze() {
	p.Sealed = true
}
