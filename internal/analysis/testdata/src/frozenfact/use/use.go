// Importing half of the frozen fact fixture: no package can mutate a
// frozen type's fields — methods (and thus builders) cannot exist here.
package use

import "frozenfact/lib"

func Tamper(p *lib.Pack) {
	p.Sealed = false // want `write to Pack, frozen after Freeze\(\)`
}

func Read(p *lib.Pack) int {
	return len(p.IDs)
}

func Build() *lib.Pack {
	p := &lib.Pack{}
	p.Add(1)
	p.Freeze()
	return p
}
