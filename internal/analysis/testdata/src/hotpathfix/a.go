// Fixture for the hotpath analyzer: each hot function demonstrates one
// banned construct (true positives) or one blessed idiom (true
// negatives).
package hotpathfix

import (
	"fmt"
	"sort"
	"strings"
)

type item struct {
	key   string
	score float64
}

// Score appends into a caller-provided buffer: param-derived slices are
// the prescribed idiom and pass.
//
//kw:hotpath
func Score(items []item, out []float64) []float64 {
	out = out[:0]
	for _, it := range items {
		out = append(out, it.score)
	}
	return out
}

//kw:hotpath
func Format(items []item) string {
	return fmt.Sprintf("%d items", len(items)) // want `hot path calls fmt.Sprintf, which may allocate`
}

//kw:hotpath
func Keys(m map[string]int) []string {
	var keys []string // want `append growth on keys, declared without capacity`
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

//kw:hotpath
func KeysPrealloc(m map[string]int, keys []string) []string {
	keys = keys[:0]
	for k := range m {
		keys = append(keys, k)
	}
	return keys
}

//kw:hotpath
func GrowLiteral(items []item) []string {
	keys := []string{} // want `append growth on keys, declared without capacity`
	for _, it := range items {
		keys = append(keys, it.key)
	}
	return keys
}

// Lookup indexes a map with a converted key: the compiler elides the
// copy, so this passes.
//
//kw:hotpath
func Lookup(m map[string]int, b []byte) int {
	return m[string(b)]
}

//kw:hotpath
func CopyString(b []byte) string {
	return string(b) // want `string\(\[\]byte\) conversion copies on the hot path`
}

//kw:hotpath
func CopyBytes(s string) []byte {
	return []byte(s) // want `\[\]byte\(string\) conversion copies on the hot path`
}

//kw:hotpath
func Tally(items []item) int {
	seen := make(map[string]bool) // want `make\(map\) allocates on the hot path`
	for _, it := range items {
		seen[it.key] = true
	}
	return len(seen)
}

// TallyPooled receives its scratch map from the caller: passes.
//
//kw:hotpath
func TallyPooled(items []item, seen map[string]bool) int {
	for _, it := range items {
		seen[it.key] = true
	}
	return len(seen)
}

//kw:hotpath
func Literal() []int {
	return []int{1, 2, 3} // want `slice literal allocates on the hot path`
}

//kw:hotpath
func Escape() *item {
	return &item{key: "x"} // want `&composite literal escapes to the heap on the hot path`
}

//kw:hotpath
func NewT() *item {
	return new(item) // want `new\(T\) allocates on the hot path`
}

// Value composite literals stay on the stack: passes.
//
//kw:hotpath
func Value() item {
	return item{key: "x"}
}

// helper is not annotated, but the hot caller's contract extends to it
// transitively through the may-allocate summary.
func helper(items []item) string {
	return strings.Join([]string{items[0].key}, ",")
}

//kw:hotpath
func Eval(items []item) string {
	return helper(items) // want `hot path calls helper, which may allocate`
}

// slowPath is declared off the hot path: calls to it are accepted.
//
//kw:coldpath
func slowPath(items []item) string {
	return fmt.Sprintf("%v", items)
}

//kw:hotpath
func WithFallback(items []item) string {
	if len(items) == 0 {
		return slowPath(items)
	}
	return ""
}

// Rank sorts with a capturing closure: the documented single bounded
// allocation, exempt.
//
//kw:hotpath
func Rank(items []item) {
	sort.Slice(items, func(i, j int) bool { return items[i].score > items[j].score })
}

// RankDirty's comparison closure runs hot even though the closure itself
// is exempt: violations inside its body still count.
//
//kw:hotpath
func RankDirty(items []item) {
	sort.Slice(items, func(i, j int) bool {
		return fmt.Sprint(items[i].key) > items[j].key // want `hot path calls fmt.Sprint, which may allocate`
	})
}

var sink func() float64

//kw:hotpath
func Close(n float64) {
	sink = func() float64 { return n } // want `closure capturing n allocates on the hot path`
}

func consume(v interface{}) {}

//kw:hotpath
func Box(it item) {
	consume(it) // want `interface boxing of a non-pointer value allocates on the hot path`
}

// BoxPtr passes a pointer: fits the interface word, no allocation.
//
//kw:hotpath
func BoxPtr(it *item) {
	consume(it)
}

// Bail panics on the failure path: panic arguments may format freely.
//
//kw:hotpath
func Bail(items []item) {
	if len(items) == 0 {
		panic(fmt.Sprintf("empty input"))
	}
}

// Ignored accepts one documented allocation into the benchmark budget.
//
//kw:hotpath
func Ignored(items []item) string {
	return fmt.Sprintf("%d", len(items)) //kwlint:ignore hotpath — documented one-off format inside the allocs/op budget
}

func noViolations() {} //kwlint:ignore hotpath — stale // want `unused //kwlint:ignore for hotpath`

//kw:hotpath(x) // want `//kw:hotpath takes no argument`
func badDirective() {}

func misplaced() {
	//kw:hotpath // want `misplaced //kw:hotpath`
	_ = 0
}
