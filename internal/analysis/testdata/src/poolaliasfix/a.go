// Fixture for the poolalias analyzer: pooled scratch must not alias
// returned values.
package poolaliasfix

import "sync"

type scratch struct {
	hits []int
	ids  []string
}

var pool = sync.Pool{New: func() interface{} { return &scratch{} }}

// getScratch returns the pooled object whole: the accessor pattern,
// recorded as a fact, not a violation.
func getScratch() *scratch {
	sc := pool.Get().(*scratch)
	sc.hits = sc.hits[:0]
	return sc
}

func putScratch(sc *scratch) { pool.Put(sc) }

// LeakField returns a projection of the pooled object: the bug.
func LeakField() []int {
	sc := pool.Get().(*scratch)
	defer pool.Put(sc)
	sc.hits = append(sc.hits, 1)
	return sc.hits // want `returned value aliases pooled scratch`
}

// LeakViaAccessor gets its scratch through the accessor; the taint
// follows the fact.
func LeakViaAccessor() []int {
	sc := getScratch()
	defer putScratch(sc)
	return sc.hits // want `returned value aliases pooled scratch`
}

// LeakSlice aliases through a slice expression.
func LeakSlice() []int {
	sc := getScratch()
	defer putScratch(sc)
	return sc.hits[:0] // want `returned value aliases pooled scratch`
}

// LeakDerivedCall returns the result of a call that was fed scratch:
// assumed to alias it.
func LeakDerivedCall() []int {
	sc := getScratch()
	defer putScratch(sc)
	return view(sc) // want `returned value aliases pooled scratch`
}

// view returns an alias of its argument — legal in itself: parameters
// are the caller's responsibility, so this function is clean.
func view(sc *scratch) []int {
	return sc.hits
}

// CopyOut copies scratch contents into fresh memory before returning:
// the prescribed fix. append into an untainted destination copies the
// elements out.
func CopyOut() []int {
	sc := getScratch()
	defer putScratch(sc)
	out := make([]int, 0, len(sc.hits))
	out = append(out, sc.hits...)
	return out
}

// build produces results straight from pooled state but declares — and
// its body honors — the freshness contract.
//
//kw:fresh
func build(sc *scratch) []int {
	out := make([]int, len(sc.hits))
	copy(out, sc.hits)
	return out
}

// FreshProducer trusts the //kw:fresh annotation on build.
func FreshProducer() []int {
	sc := getScratch()
	defer putScratch(sc)
	return build(sc)
}

// CountOnly returns a basic value: cannot alias.
func CountOnly() int {
	sc := getScratch()
	defer putScratch(sc)
	return len(sc.hits)
}

// Suppressed documents a deliberate exception.
func Suppressed() []int {
	sc := getScratch()
	return sc.hits //kwlint:ignore poolalias — ownership transferred, caller puts the scratch back
}

type hasFresh struct{}

//kw:fresh // want `misplaced //kw:fresh`
var notAFunc int

//kw:fresh(x) // want `//kw:fresh takes no argument`
func badFreshArg() {}

var _ = hasFresh{}
