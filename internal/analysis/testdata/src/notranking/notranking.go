// Fixture for the floatcompare analyzer: outside the ranking/eval scope
// float equality is legal (tests, plotting, fixtures, …).
package notranking

func Equal(a, b float64) bool { return a == b }
