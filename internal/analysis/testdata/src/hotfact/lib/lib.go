// Dependency half of the fact-propagation fixture: the analyzer runs
// here first and exports may-allocate / exempt summaries that the
// importing fixture (hotfact/use) consumes.
package lib

import "strings"

// Render allocates; its summary fact must travel to importing packages.
func Render(parts []string) string {
	return strings.Join(parts, " ")
}

// Sum is allocation-free: no fact, treated as clean.
func Sum(xs []int) int {
	n := 0
	for _, x := range xs {
		n += x
	}
	return n
}

// Trace is cold by contract; the exemption fact travels too.
//
//kw:coldpath
func Trace(parts []string) string {
	return strings.Join(parts, "+")
}
