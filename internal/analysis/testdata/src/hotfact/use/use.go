// Importing half of the fact-propagation fixture: violations in a
// dependency package surface at the call site here, through facts alone.
package use

import "hotfact/lib"

//kw:hotpath
func Hot(parts []string, xs []int) int {
	if len(parts) > 1 {
		_ = lib.Render(parts) // want `hot path calls lib.Render, which may allocate`
	}
	_ = lib.Trace(parts) // //kw:coldpath fact: accepted
	return lib.Sum(xs)   // clean summary: accepted
}
