// Importing half of the lockguard fact fixture: the guard annotation
// travels as a fact on the field object.
package use

import "lockfact/lib"

func Racy(r *lib.Registry, k string) int {
	return r.Items[k] // want `access to Items, guarded by Mu`
}

func Safe(r *lib.Registry, k string) int {
	r.Mu.Lock()
	defer r.Mu.Unlock()
	return r.Items[k]
}
