// Dependency half of the lockguard fact fixture: a guarded exported
// field whose contract must hold for importing packages too.
package lib

import "sync"

type Registry struct {
	Mu sync.Mutex
	//kw:guardedby(Mu)
	Items map[string]int
}
