// Fixture extension for the seededrand analyzer: the fault-injector
// pattern from internal/resilience — per-request RNG streams derived
// from an injected seed by a splitmix-style mixer are fine; injectors
// that bake in a constant or the wall clock are not.
package seededrand

import (
	"math/rand"
	"time"
)

// --- flagging cases ---

func injectorHardCoded() *rand.Rand {
	return rand.New(rand.NewSource(0xC0FFEE)) // want `hard-coded seed for rand.NewSource`
}

func injectorWallClock() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().Unix())) // want `time-derived seed for rand.NewSource`
}

// --- non-flagging cases ---

type injectorConfig struct{ Seed int64 }

// mixStream is the splitmix64-finalizer idiom from internal/par.Seed:
// deriving a per-request stream from an injected base seed keeps the
// stream deterministic without sharing one locked source.
func mixStream(seed int64, index int) int64 {
	z := uint64(seed) + uint64(index+1)*0x9E3779B97F4A7C15
	z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9
	z = (z ^ (z >> 27)) * 0x94D049BB133111EB
	return int64(z ^ (z >> 31))
}

func injectorPerRequest(cfg injectorConfig, requestIndex int) *rand.Rand {
	return rand.New(rand.NewSource(mixStream(cfg.Seed, requestIndex)))
}
