// Test-file policy for seededrand: tests pin seeds by design, so the
// hard-coded-constant branch is exempt here — but a time-derived seed
// makes the test unreproducible and is flagged everywhere.
package seededrand

import (
	"math/rand"
	"time"
)

// Constant seed in a test: legal, tests pin seeds by design.
func pinnedSeedInTest() *rand.Rand {
	return rand.New(rand.NewSource(42))
}

// Wall-clock seed in a test: still a bug.
func flakySeedInTest() *rand.Rand {
	return rand.New(rand.NewSource(time.Now().UnixNano())) // want `time-derived seed for rand.NewSource`
}
