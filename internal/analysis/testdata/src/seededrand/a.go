// Fixture for the seededrand analyzer: random sources must be built from
// injected seeds, never hard-coded constants or the wall clock.
package seededrand

import (
	"flag"
	"math/rand"
	"time"
)

// --- flagging cases ---

func hardCoded() *rand.Rand {
	return rand.New(rand.NewSource(42)) // want `hard-coded seed for rand.NewSource`
}

func hardCodedExpr() rand.Source {
	return rand.NewSource(40 + 2) // want `hard-coded seed for rand.NewSource`
}

func localConst() rand.Source {
	s := int64(42)
	return rand.NewSource(s) // want `hard-coded seed for rand.NewSource`
}

func wallClock() rand.Source {
	return rand.NewSource(time.Now().UnixNano()) // want `time-derived seed for rand.NewSource`
}

// --- non-flagging cases ---

func fromParam(seed int64) rand.Source {
	return rand.NewSource(seed)
}

func fromParamExpr(seed int64) rand.Source {
	return rand.NewSource(seed + 31)
}

type Config struct{ Seed int64 }

func fromField(cfg Config) rand.Source {
	return rand.NewSource(cfg.Seed)
}

var seedFlag = flag.Int64("seed", 7, "injected seed")

func fromFlag() rand.Source {
	return rand.NewSource(*seedFlag)
}

func fromMutatedLocal(inputs []int64) rand.Source {
	s := int64(1)
	for _, in := range inputs {
		s = s*31 + in
	}
	return rand.NewSource(s)
}
