// Fixture for the ctxflow analyzer, inside the scope (path suffix
// internal/serve): request-path code must thread ctx and clean up
// timers.
package serve

import (
	"context"
	"time"
)

// Handle threads the caller's context: legal.
func Handle(ctx context.Context, d time.Duration) error {
	cctx, cancel := context.WithTimeout(ctx, d)
	defer cancel()
	return work(cctx)
}

// Detached mints a fresh root mid-request: the bug.
func Detached(d time.Duration) error {
	ctx := context.Background() // want `context.Background\(\) detaches the request path`
	return work(ctx)
}

// Sketch uses the other spelling.
func Sketch() error {
	return work(context.TODO()) // want `context.TODO\(\) detaches the request path`
}

// Rooted is the process-lifetime root, documented and accepted.
func Rooted() context.Context {
	return context.Background() //kwlint:ignore ctxflow — process-lifetime root for the listener, established once at startup
}

// Wait leaks a timer per call.
func Wait(ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-time.After(time.Second): // want `time.After leaks its timer`
		return 0
	}
}

// WaitClean stops its timer on every path: legal.
func WaitClean(ch chan int) int {
	timer := time.NewTimer(time.Second)
	defer timer.Stop()
	select {
	case v := <-ch:
		return v
	case <-timer.C:
		return 0
	}
}

// Forgetful binds the timer but never stops it.
func Forgetful(ch chan int) int {
	timer := time.NewTimer(time.Second) // want `time.NewTimer without a Stop call`
	select {
	case v := <-ch:
		return v
	case <-timer.C:
		return 0
	}
}

// Unbound has no handle to stop at all.
func Unbound(ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-time.NewTimer(time.Second).C: // want `time.NewTimer used without binding its result`
		return 0
	}
}

// Ticker gets the same treatment.
func Ticker(n int) int {
	t := time.NewTicker(time.Millisecond) // want `time.NewTicker without a Stop call`
	total := 0
	for i := 0; i < n; i++ {
		<-t.C
		total++
	}
	return total
}

func work(ctx context.Context) error {
	<-ctx.Done()
	return ctx.Err()
}
