// Fixture for the lockguard analyzer: //kw:guardedby(mu) fields may
// only be touched with the named sibling mutex held.
package lockguardfix

import "sync"

type shard struct {
	mu sync.RWMutex
	//kw:guardedby(mu)
	entries map[string]int
	count   int //kw:guardedby(mu) — trailing-comment form works too
	free    int // unguarded
}

// Get locks before reading: legal.
func (s *shard) Get(k string) (int, bool) {
	s.mu.RLock()
	defer s.mu.RUnlock()
	v, ok := s.entries[k]
	return v, ok
}

// Put write-locks: legal.
func (s *shard) Put(k string, v int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.entries[k] = v
	s.count++
}

// Racy never touches the mutex: the bug.
func (s *shard) Racy(k string) int {
	return s.entries[k] // want `access to entries, guarded by mu`
}

// RacyWrite increments a guarded counter without the lock.
func (s *shard) RacyWrite() {
	s.count++ // want `access to count, guarded by mu`
}

// Free is unguarded: no report.
func (s *shard) Free() int {
	return s.free
}

// newShard constructs the object it initializes: not yet shared, no
// lock needed.
func newShard() *shard {
	s := &shard{}
	s.entries = map[string]int{}
	return s
}

// locked is called with the lock already held and says so.
//
//kw:holds(mu)
func locked(s *shard, k string) int {
	return s.entries[k]
}

// LockElsewhere takes the lock somewhere in the body; the check is
// flow-insensitive by design, so the early access passes too.
func LockElsewhere(s *shard, keys []string) int {
	n := len(s.entries)
	s.mu.Lock()
	defer s.mu.Unlock()
	for _, k := range keys {
		n += s.entries[k]
	}
	return n
}

// WrongRoot locks one shard and reads another: the roots differ.
func WrongRoot(a, b *shard, k string) int {
	a.mu.RLock()
	defer a.mu.RUnlock()
	return b.entries[k] // want `access to entries, guarded by mu`
}

// Suppressed documents a deliberate unguarded read.
func Suppressed(s *shard) int {
	return len(s.entries) //kwlint:ignore lockguard — approximate size for metrics; torn reads acceptable
}

type badGuard struct {
	//kw:guardedby(nosuch) // want `no sibling field named nosuch`
	data []int
	//kw:guardedby(data) // want `not a sync.Mutex or sync.RWMutex`
	more []int
}

//kw:holds(mu) // want `misplaced //kw:holds`
var notAFunc int

//kw:guardedby // want `//kw:guardedby requires an argument`
func badDirective() {}

var _ = badGuard{}
var _ = newShard
var _ = locked
