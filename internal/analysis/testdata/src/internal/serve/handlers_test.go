// Test files are no longer exempt from errsink: a test helper that
// drops a write error hides the same truncation bugs in the fixtures
// it builds.
package serve

import (
	"io"
	"strings"
)

func buildFixtureBody(w io.Writer) {
	io.Copy(w, strings.NewReader("body")) // want `error from io.Copy is silently dropped`
}

func buildFixtureBodyChecked(w io.Writer) error {
	_, err := io.Copy(w, strings.NewReader("body"))
	return err
}
