// Fixture for the errsink analyzer: this package path is inside the
// serve scope, where write errors must be consumed.
package serve

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"strings"
)

// --- flagging cases ---

func dropEncode(w http.ResponseWriter, v any) {
	json.NewEncoder(w).Encode(v) // want `error from json.Encoder.Encode is silently dropped`
}

func dropWrite(w http.ResponseWriter, b []byte) {
	w.Write(b) // want `\.Write is silently dropped`
}

func dropFprintln(w http.ResponseWriter) {
	fmt.Fprintln(w, "ok") // want `error from fmt.Fprintln is silently dropped`
}

func dropWriteString(w io.Writer) {
	io.WriteString(w, "x") // want `error from io.WriteString is silently dropped`
}

// --- non-flagging cases ---

func checkedEncode(w http.ResponseWriter, v any) {
	if err := json.NewEncoder(w).Encode(v); err != nil {
		http.Error(w, err.Error(), http.StatusInternalServerError)
	}
}

func explicitDiscard(w http.ResponseWriter, v any) {
	_ = json.NewEncoder(w).Encode(v)
}

func checkedWrite(w http.ResponseWriter, b []byte) error {
	_, err := w.Write(b)
	return err
}

// bytes.Buffer and strings.Builder writes are documented to never fail.
func bufferWrites() string {
	var buf bytes.Buffer
	buf.WriteString("a")
	var sb strings.Builder
	sb.WriteString("b")
	return buf.String() + sb.String()
}
