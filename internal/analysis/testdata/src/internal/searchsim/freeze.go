// Fixture for the determinism analyzer, modeled on the frozen-index
// build path: internal/searchsim is inside the deterministic-pipeline
// scope because Freeze() must produce byte-identical compressed posting
// lists for a seeded corpus (the CI guard pins the frozen size to the
// byte). Wall-clock stamps in index stats, draws from the global
// math/rand source while laying out blocks, and emitting per-term
// summaries in map order would all silently break that contract.
package searchsim

import (
	"math/rand"
	"sort"
	"time"
)

type indexStats struct {
	frozenBytes int64
	builtAt     int64
}

// --- flagging cases ---

func stampFreeze(s *indexStats) {
	s.builtAt = time.Now().Unix() // want `time.Now reads the wall clock`
}

func freezeDuration(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock`
}

func jitterSkipInterval() int {
	return 16 + rand.Intn(16) // want `global math/rand source \(rand.Intn\)`
}

func shuffleTermOrder(terms []uint32) {
	rand.Shuffle(len(terms), func(i, j int) { terms[i], terms[j] = terms[j], terms[i] }) // want `global math/rand source \(rand.Shuffle\)`
}

func unsortedTermReport(docFreq map[string]int) []string {
	var report []string
	for term := range docFreq {
		report = append(report, term) // want `report is appended to while ranging over a map and returned without a sort`
	}
	return report
}

// --- non-flagging cases ---

// Corpus generation draws from a caller-seeded source; constructing it
// is the approved shape.
func corpusRand(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

func sampleDocLength(rng *rand.Rand) int {
	return 40 + rng.Intn(160)
}

// Freezing iterates the dense postings table by term ID, not a map, so
// the block layout (and therefore the compressed bytes) is a pure
// function of the corpus.
func freezeOrder(raw [][]int32) []int64 {
	sizes := make([]int64, 0, len(raw))
	for _, pl := range raw {
		sizes = append(sizes, int64(len(pl)))
	}
	return sizes
}

// Sorted emission: map order never reaches the stats output.
func sortedTermReport(docFreq map[string]int) []string {
	var report []string
	for term := range docFreq {
		report = append(report, term)
	}
	sort.Strings(report)
	return report
}

// Not returned: a map-ordered scratch walk that only feeds an aggregate
// is invisible to the caller.
func totalPostings(docFreq map[string]int) int {
	var terms []string
	for term := range docFreq {
		terms = append(terms, term)
	}
	total := 0
	for _, t := range terms {
		total += docFreq[t]
	}
	return total
}
