// Fixture for the orderedfanout analyzer: this package path is inside the
// deterministic-pipeline scope, so arrival-order collection from worker
// channels must be flagged while index-addressed collection stays clean.
package relevance

import "sort"

type result struct {
	idx   int
	score float64
	terms []string
}

// --- flagging cases ---

func arrivalOrderCollect(ch chan result) []string {
	var out []string
	for r := range ch {
		out = append(out, r.terms...) // want `out is appended to while ranging over a channel and returned without a sort`
	}
	return out
}

func arrivalOrderSum(ch chan result) float64 {
	total := 0.0
	for r := range ch {
		total += r.score // want `floating-point accumulation into total while ranging over a channel`
	}
	return total
}

// --- non-flagging cases ---

// Index-addressed collection: the par.Map shape — slot i holds result i
// no matter when it arrives.
func indexAddressed(ch chan result, n int) []float64 {
	out := make([]float64, n)
	for r := range ch {
		out[r.idx] = r.score
	}
	return out
}

// Sorted before escaping: arrival order never reaches the caller.
func sortedAfterCollect(ch chan result) []result {
	var out []result
	for r := range ch {
		out = append(out, r)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].idx < out[j].idx })
	return out
}

// Integer counting is exact arithmetic; order cannot matter.
func countOnly(ch chan result) int {
	n := 0
	for range ch {
		n++
	}
	return n
}

// Not returned: local accumulation order is invisible to the caller.
func localCollect(ch chan result) int {
	var all []result
	for r := range ch {
		all = append(all, r)
	}
	return len(all)
}
