// Fixture for the floatcompare analyzer: this package path is inside the
// ranking/eval scope, where exact equality between two computed scores is
// forbidden.
package eval

// --- flagging cases ---

func tieByEquality(a, b float64) bool {
	return a == b // want `== between two computed floats`
}

func notEqual(scores []float64) bool {
	return scores[0] != scores[1] // want `!= between two computed floats`
}

// --- non-flagging cases ---

// Comparing against a constant is a guard, not a tie decision.
func zeroGuard(total float64) float64 {
	if total == 0 {
		return 0
	}
	return 1 / total
}

func intCompare(a, b int) bool { return a == b }

// Ordered comparisons implement the tie-breaking rule legally.
func tieBreak(a, b float64, ka, kb string) bool {
	switch {
	case a > b:
		return true
	case a < b:
		return false
	}
	return ka < kb
}
