// Test files are no longer exempt from floatcompare: a test asserting
// exact equality on a computed score breaks on any legitimate summation
// reorder. Deliberate bit-exactness assertions carry a reasoned ignore.
package eval

func assertTie(a, b float64) bool {
	return a == b // want `== between two computed floats`
}

func assertBitExact(got, golden float64) bool {
	return got == golden //kwlint:ignore floatcompare — golden-file test asserts bit-exact replay by design
}
