// Test files are no longer exempt from the determinism analyzer: a
// wall-clock read or a global-rand draw makes a test flaky in exactly
// the way it would make the pipeline nondeterministic. Deliberate
// exceptions document themselves with a reasoned //kwlint:ignore.
package clicksim

import "time"

func stampInTest() int64 {
	return time.Now().Unix() // want `time.Now reads the wall clock`
}

// A reasoned ignore on the offending line suppresses the diagnostic.
func benchWindow() time.Time {
	return time.Now() //kwlint:ignore determinism — this helper measures real elapsed time on purpose
}

// An ignore that suppresses nothing is stale armor and is itself
// reported (at Finish, on the directive's line).
func cleanHelper() int {
	return 1 /* want `unused //kwlint:ignore for determinism` */ //kwlint:ignore determinism — demo of a stale suppression
}
