// Suite-owner fixture: determinism is AnalyzerNames[0], so it claims the
// cross-cutting annotation diagnostics — unknown //kw: verbs and
// malformed //kwlint:ignore directives — exactly once per suite run.
package clicksim

// A typo'd verb must be a diagnostic, never a silently-disabled contract.
//
//kw:hotpth // want `unknown //kw: verb "hotpth"`
func typoedContract() {}

func ignoreUnknownTarget() int {
	return 1 //kwlint:ignore hotpth — typo'd analyzer name // want `malformed //kwlint:ignore`
}

func ignoreMissingReason() int {
	return 1 /* want `//kwlint:ignore determinism is missing its reason` */ //kwlint:ignore determinism
}
