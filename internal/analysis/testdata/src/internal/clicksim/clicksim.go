// Fixture for the determinism analyzer: this package path is inside the
// deterministic-pipeline scope, so wall-clock reads, the global math/rand
// source, and unsorted map emissions must all be flagged.
package clicksim

import (
	"math/rand"
	"sort"
	"time"
)

// --- flagging cases ---

func stampClicks() int64 {
	return time.Now().Unix() // want `time.Now reads the wall clock`
}

func elapsed(start time.Time) time.Duration {
	return time.Since(start) // want `time.Since reads the wall clock`
}

func globalDraw() int {
	return rand.Intn(10) // want `global math/rand source \(rand.Intn\)`
}

func globalShuffle(xs []int) {
	rand.Shuffle(len(xs), func(i, j int) { xs[i], xs[j] = xs[j], xs[i] }) // want `global math/rand source \(rand.Shuffle\)`
}

func unsortedEmission(counts map[string]int) []string {
	var out []string
	for k := range counts {
		out = append(out, k) // want `out is appended to while ranging over a map and returned without a sort`
	}
	return out
}

// --- non-flagging cases ---

// Injected source: constructing from a caller seed is the approved shape.
func injectedDraw(rng *rand.Rand) int {
	return rng.Intn(10)
}

func constructorAllowed(seed int64) *rand.Rand {
	return rand.New(rand.NewSource(seed))
}

// Sorted emission: the map order never reaches the caller.
func sortedEmission(counts map[string]int) []string {
	var out []string
	for k := range counts {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}

// Project-convention sort helper recognized by name.
func helperSortedEmission(counts map[string]int) []string {
	var out []string
	for k := range counts {
		out = append(out, k)
	}
	sortKeys(out)
	return out
}

func sortKeys(keys []string) { sort.Strings(keys) }

// Not returned: local accumulation order is invisible to the caller.
func notReturned(counts map[string]int) int {
	var all []string
	for k := range counts {
		all = append(all, k)
	}
	return len(all)
}
