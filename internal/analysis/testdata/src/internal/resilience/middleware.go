// Fixture for the errsink analyzer: internal/resilience is inside the
// errsink scope — middleware that writes shed/degraded/recovery
// responses must consume every write error, or the chaos counters and
// the bytes on the wire can disagree.
package resilience

import (
	"encoding/json"
	"fmt"
	"io"
	"net/http"
)

// --- flagging cases ---

func shedDroppingBody(w http.ResponseWriter) {
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusTooManyRequests)
	fmt.Fprintln(w, "overloaded") // want `error from fmt.Fprintln is silently dropped`
}

func recoverDroppingWrite(w http.ResponseWriter, msg []byte) {
	w.WriteHeader(http.StatusInternalServerError)
	w.Write(msg) // want `\.Write is silently dropped`
}

func degradedDroppingEncode(w http.ResponseWriter, snapshot any) {
	json.NewEncoder(w).Encode(snapshot) // want `error from json.Encoder.Encode is silently dropped`
}

func drainDroppingCopy(dst io.Writer, src io.Reader) {
	io.Copy(dst, src) // want `error from io.Copy is silently dropped`
}

// --- non-flagging cases ---

func shedChecked(w http.ResponseWriter) error {
	w.Header().Set("Retry-After", "1")
	w.WriteHeader(http.StatusTooManyRequests)
	_, err := fmt.Fprintln(w, "overloaded")
	return err
}

func degradedCounted(w http.ResponseWriter, snapshot any, writeErrors *int64) {
	if err := json.NewEncoder(w).Encode(snapshot); err != nil {
		*writeErrors++
	}
}

// Draining a response body before retry: the byte count and error are
// deliberately irrelevant, and the discard says so.
func drainDiscard(body io.Reader) {
	_, _ = io.Copy(io.Discard, io.LimitReader(body, 1<<16))
}
