// Fixture for the errsink analyzer: outside the serve scope dropped
// write errors are another linter's business.
package notserve

import (
	"fmt"
	"io"
)

func Drop(w io.Writer) {
	fmt.Fprintln(w, "ok")
}
