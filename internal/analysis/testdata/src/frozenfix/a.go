// Fixture for the frozen analyzer: //kw:frozen-after types reject field
// writes outside their freeze method and //kw:builder methods.
package frozenfix

// Index is immutable once Freeze has run.
//
//kw:frozen-after(Freeze)
type Index struct {
	docs   []string
	counts map[string]int
	sealed bool
}

// NewIndex constructs: the build phase by definition.
func NewIndex() *Index {
	ix := &Index{counts: map[string]int{}}
	ix.docs = make([]string, 0, 8)
	return ix
}

// Add is the build-phase API.
//
//kw:builder
func (ix *Index) Add(doc string) {
	ix.docs = append(ix.docs, doc)
	ix.counts[doc]++
}

// Freeze seals the index; it may write.
func (ix *Index) Freeze() {
	ix.sealed = true
}

// Len only reads: legal anywhere.
func (ix *Index) Len() int {
	return len(ix.docs)
}

// Reset mutates outside the build phase: the bug the annotation exists
// to catch.
func (ix *Index) Reset() {
	ix.docs = nil // want `write to Index, frozen after Freeze\(\)`
}

// Touch increments a counter through the map: mutation too.
func (ix *Index) Touch(doc string) {
	ix.counts[doc]++ // want `write to Index, frozen after Freeze\(\)`
}

// Evict deletes from an owned map: mutation.
func (ix *Index) Evict(doc string) {
	delete(ix.counts, doc) // want `write to Index, frozen after Freeze\(\)`
}

// Clobber mutates from outside the type entirely.
func Clobber(ix *Index) {
	ix.sealed = false // want `write to Index, frozen after Freeze\(\)`
}

// Rebuild constructs its own value: not yet shared, free to write.
func Rebuild(docs []string) *Index {
	ix := &Index{counts: map[string]int{}}
	for _, d := range docs {
		ix.docs = append(ix.docs, d)
	}
	ix.sealed = true
	return ix
}

// Suppressed documents a deliberate post-freeze write.
func Suppressed(ix *Index) {
	ix.sealed = true //kwlint:ignore frozen — test-only reseal helper, never on the query path
}

//kw:frozen-after(Seal) // want `type Loose has no method Seal`
type Loose struct {
	data []int
}

//kw:builder // want `//kw:builder on a method of Plain, which has no //kw:frozen-after annotation`
func (p *Plain) Grow() {}

type Plain struct{ n int }

//kw:builder // want `//kw:builder on a non-method`
func freeFunc() {}

//kw:frozen-after(Freeze) // want `misplaced //kw:frozen-after`
var notAType int

var _ = Loose{}
var _ = Plain{}
var _ = freeFunc
