// Fixture for the determinism analyzer: this package is OUTSIDE the
// deterministic-pipeline scope, so nothing here may be flagged even
// though it commits every sin the analyzer knows.
package notpipeline

import (
	"math/rand"
	"time"
)

func Stamp() int64 { return time.Now().Unix() }

func Draw() int { return rand.Intn(10) }

func Emit(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
