// Fixture for the determinism analyzer: this package is OUTSIDE the
// deterministic-pipeline scope, so nothing here may be flagged even
// though it commits every sin the analyzer knows.
package notpipeline

import (
	"math/rand"
	"time"
)

func Stamp() int64 { return time.Now().Unix() }

func Draw() int { return rand.Intn(10) }

func Emit(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}

func Collect(ch chan float64) []float64 {
	var out []float64
	for v := range ch {
		out = append(out, v)
	}
	return out
}

func Sum(ch chan float64) float64 {
	total := 0.0
	for v := range ch {
		total += v
	}
	return total
}
