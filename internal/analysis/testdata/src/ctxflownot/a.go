// Out-of-scope fixture for the ctxflow analyzer: the same constructs
// outside internal/serve and internal/resilience are not reported.
package ctxflownot

import (
	"context"
	"time"
)

func Root() context.Context {
	return context.Background()
}

func Wait(ch chan int) int {
	select {
	case v := <-ch:
		return v
	case <-time.After(time.Second):
		return 0
	}
}
