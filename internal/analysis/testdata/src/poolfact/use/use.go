// Importing half of the poolalias fact fixture: taint starts at a
// cross-package accessor call and is cleared by a cross-package
// //kw:fresh fact.
package use

import "poolfact/lib"

func Leak() []int {
	sc := lib.Rent()
	defer lib.Return(sc)
	return sc.Hits // want `returned value aliases pooled scratch`
}

func Clean() []int {
	sc := lib.Rent()
	defer lib.Return(sc)
	return lib.Snapshot(sc)
}
