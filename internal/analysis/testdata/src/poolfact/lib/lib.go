// Dependency half of the poolalias fact fixture: exports an accessor
// (pooledFact) and a fresh producer (freshFact).
package lib

import "sync"

type Scratch struct {
	Hits []int
}

var pool = sync.Pool{New: func() interface{} { return &Scratch{} }}

// Rent hands out the pooled object whole: accessor, fact exported.
func Rent() *Scratch {
	return pool.Get().(*Scratch)
}

func Return(sc *Scratch) { pool.Put(sc) }

// Snapshot copies before returning and says so.
//
//kw:fresh
func Snapshot(sc *Scratch) []int {
	out := make([]int, len(sc.Hits))
	copy(out, sc.Hits)
	return out
}
