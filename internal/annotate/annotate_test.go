package annotate

import (
	"strings"
	"testing"

	"contextrank/internal/detect"
	"contextrank/internal/framework"
	"contextrank/internal/taxonomy"
	"contextrank/internal/textproc"
	"contextrank/internal/world"
)

func ann(text, norm string, kind detect.Kind, start int, score float64) framework.Annotation {
	return framework.Annotation{
		Detection: detect.Detection{
			Text: text, Norm: norm, Kind: kind,
			Start: start, End: start + len(text),
		},
		Score: score,
	}
}

func TestRenderWrapsSpansAndEscapes(t *testing.T) {
	text := `Troops <advanced> on Baghdad today.`
	anns := []framework.Annotation{
		ann("Baghdad", "baghdad", detect.KindNamed, strings.Index(text, "Baghdad"), 1.5),
	}
	r := NewRenderer(nil)
	out := r.Render(text, anns)
	if !strings.Contains(out, `data-concept="baghdad"`) {
		t.Fatalf("missing shortcut span: %s", out)
	}
	if !strings.Contains(out, "&lt;advanced&gt;") {
		t.Fatalf("HTML not escaped: %s", out)
	}
	if strings.Contains(out, "<advanced>") {
		t.Fatalf("raw tag leaked: %s", out)
	}
	// Surface text preserved inside the span.
	if !strings.Contains(out, ">Baghdad<") {
		t.Fatalf("surface text missing: %s", out)
	}
}

func TestRenderSkipsInvalidSpans(t *testing.T) {
	text := "alpha beta gamma"
	anns := []framework.Annotation{
		ann("alpha beta", "a", detect.KindConcept, 0, 1),
		ann("beta", "b", detect.KindConcept, 6, 1),     // overlaps the first
		ann("way out", "c", detect.KindConcept, 99, 1), // out of range
	}
	r := NewRenderer(nil)
	out := r.Render(text, anns)
	if !strings.Contains(out, `data-concept="a"`) {
		t.Fatalf("first annotation lost: %s", out)
	}
	if strings.Contains(out, `data-concept="b"`) || strings.Contains(out, `data-concept="c"`) {
		t.Fatalf("invalid spans rendered: %s", out)
	}
}

func TestRenderEmptyAnnotations(t *testing.T) {
	r := NewRenderer(nil)
	if got := r.Render("plain text", nil); got != "plain text" {
		t.Fatalf("Render = %q", got)
	}
}

func TestPatternOverlays(t *testing.T) {
	p := &DefaultProvider{}
	email := detect.Detection{Norm: "a@b.com", Kind: detect.KindPattern, PatternType: "email"}
	if o := p.Overlay(email); o.Kind != "contact" || o.Lines[0] != "mailto:a@b.com" {
		t.Fatalf("email overlay = %+v", o)
	}
	phone := detect.Detection{Norm: "408-555-0100", Kind: detect.KindPattern, PatternType: "phone"}
	if o := p.Overlay(phone); o.Lines[0] != "tel:408-555-0100" {
		t.Fatalf("phone overlay = %+v", o)
	}
	url := detect.Detection{Norm: "http://x.test", Kind: detect.KindPattern, PatternType: "url"}
	if o := p.Overlay(url); o.Lines[0] != "http://x.test" {
		t.Fatalf("url overlay = %+v", o)
	}
}

func TestPlaceGetsMapOverlay(t *testing.T) {
	p := &DefaultProvider{}
	d := detect.Detection{
		Norm: "springfield", Kind: detect.KindNamed,
		Entry: &taxonomy.Entry{
			Phrase: "springfield", Type: world.TypePlace, Subtype: "city",
			Geo: &taxonomy.GeoPoint{Lat: 39.8, Lon: -89.6},
		},
	}
	o := p.Overlay(d)
	if o.Kind != "map" {
		t.Fatalf("place overlay kind = %q", o.Kind)
	}
	if !strings.Contains(o.Lines[0], "39.8") {
		t.Fatalf("map overlay missing coordinates: %+v", o)
	}
}

func TestNamedGetsSearchResults(t *testing.T) {
	p := &DefaultProvider{
		Snippets:     func(string, int) []string { return []string{"result one", "result two"} },
		ArticleWords: func(string) int { return 1200 },
	}
	d := detect.Detection{
		Norm: "somebody famous", Kind: detect.KindNamed,
		Entry: &taxonomy.Entry{Phrase: "somebody famous", Type: world.TypePerson, Subtype: "actor"},
	}
	o := p.Overlay(d)
	if o.Kind != "search" || len(o.Lines) != 3 {
		t.Fatalf("person overlay = %+v", o)
	}
	if !strings.Contains(o.Lines[2], "1200 words") {
		t.Fatalf("article line missing: %+v", o)
	}
}

func TestConceptGetsRelatedQueries(t *testing.T) {
	p := &DefaultProvider{
		Related: func(q string, max int) []string { return []string{q + " facts", q + " news"} },
	}
	d := detect.Detection{Norm: "global warming", Kind: detect.KindConcept}
	o := p.Overlay(d)
	if o.Kind != "related" || len(o.Lines) != 2 {
		t.Fatalf("concept overlay = %+v", o)
	}
	// Fallback to search snippets when no suggestions exist.
	p2 := &DefaultProvider{
		Related:  func(string, int) []string { return nil },
		Snippets: func(string, int) []string { return []string{"snippet"} },
	}
	if o := p2.Overlay(d); o.Kind != "search" || len(o.Lines) != 1 {
		t.Fatalf("fallback overlay = %+v", o)
	}
}

func TestOverlayRenderedIntoHTML(t *testing.T) {
	text := "visit springfield now"
	p := &DefaultProvider{}
	r := NewRenderer(p)
	anns := []framework.Annotation{{
		Detection: detect.Detection{
			Text: "springfield", Norm: "springfield", Kind: detect.KindNamed,
			Start: 6, End: 17,
			Entry: &taxonomy.Entry{Phrase: "springfield", Type: world.TypePlace, Geo: &taxonomy.GeoPoint{Lat: 1, Lon: 2}},
		},
	}}
	out := r.Render(text, anns)
	if !strings.Contains(out, "overlay-map") || !strings.Contains(out, "Map of springfield") {
		t.Fatalf("overlay missing: %s", out)
	}
}

func TestOverlayLineCap(t *testing.T) {
	many := make([]string, 10)
	for i := range many {
		many[i] = "line"
	}
	p := &DefaultProvider{Snippets: func(string, int) []string { return many }}
	r := NewRenderer(p)
	r.MaxOverlayLines = 2
	text := "hello concept world"
	anns := []framework.Annotation{ann("concept", "concept", detect.KindConcept, 6, 1)}
	out := r.Render(text, anns)
	if got := strings.Count(out, "<em>"); got != 2 {
		t.Fatalf("overlay lines = %d, want 2", got)
	}
}

func TestRenderSourceWrapsOriginalHTML(t *testing.T) {
	src := `<div>Email <a href="mailto:x">team@example.org</a> before the <b>deadline</b>.</div>`
	res := textproc.StripHTMLMapped(src)
	at := strings.Index(res.Text, "team@example.org")
	anns := []framework.Annotation{{
		Detection: detect.Detection{
			Text: "team@example.org", Norm: "team@example.org",
			Kind: detect.KindPattern, PatternType: "email",
			Start: at, End: at + len("team@example.org"),
		},
	}}
	r := NewRenderer(nil)
	out := r.RenderSource(src, res, anns)
	if !strings.Contains(out, `<span class="shortcut shortcut-pattern" data-concept="team@example.org"`) {
		t.Fatalf("span missing: %s", out)
	}
	// The original markup survives untouched around the span.
	if !strings.Contains(out, `<a href="mailto:x">`) || !strings.Contains(out, "<b>deadline</b>") {
		t.Fatalf("original markup damaged: %s", out)
	}
}

func TestRenderSourceSkipsMarkupCrossingSpans(t *testing.T) {
	src := `<p>The <b>Iraq</b> war continued.</p>`
	res := textproc.StripHTMLMapped(src)
	at := strings.Index(res.Text, "Iraq war")
	anns := []framework.Annotation{{
		Detection: detect.Detection{
			Text: "Iraq war", Norm: "iraq war", Kind: detect.KindConcept,
			Start: at, End: at + len("Iraq war"),
		},
	}}
	r := NewRenderer(nil)
	out := r.RenderSource(src, res, anns)
	// The phrase crosses </b>; wrapping must be skipped and markup preserved.
	if strings.Contains(out, "data-concept") {
		t.Fatalf("markup-crossing span wrapped: %s", out)
	}
	if out != src {
		t.Fatalf("document altered: %s", out)
	}
}
