package annotate

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"contextrank/internal/framework"
	"contextrank/internal/textproc"
)

// RenderSource annotates the ORIGINAL HTML document: annotations carry
// offsets into the stripped text (res.Text), and the offset map projects
// them back onto the markup, so the publisher's page keeps its layout and
// only gains shortcut spans — exactly how Contextual Shortcuts integrates
// with Yahoo! properties.
//
// Spans whose source slice crosses markup (a phrase split by tags, e.g.
// "Iraq</b> <i>war") are skipped: wrapping them would produce invalid
// nesting. Overlapping spans keep the first.
func (r *Renderer) RenderSource(src string, res *textproc.StripResult, anns []framework.Annotation) string {
	type span struct {
		lo, hi int
		a      framework.Annotation
	}
	var spans []span
	for _, a := range anns {
		d := a.Detection
		if d.Start < 0 || d.End > len(res.Text) || d.End <= d.Start {
			continue
		}
		lo, hi := res.SourceSpan(d.Start, d.End)
		if lo < 0 || hi > len(src) || hi <= lo {
			continue
		}
		if strings.ContainsAny(src[lo:hi], "<>") {
			continue // crosses markup; wrapping would break nesting
		}
		spans = append(spans, span{lo: lo, hi: hi, a: a})
	}
	sort.Slice(spans, func(i, j int) bool { return spans[i].lo < spans[j].lo })

	var b strings.Builder
	b.Grow(len(src) + 64*len(spans))
	pos := 0
	for _, s := range spans {
		if s.lo < pos {
			continue // overlap: keep the earlier annotation
		}
		b.WriteString(src[pos:s.lo])
		d := s.a.Detection
		class := "shortcut shortcut-" + d.Kind.String()
		fmt.Fprintf(&b, `<span class=%q data-concept=%q data-score="%.3f">%s</span>`,
			class, html.EscapeString(d.Norm), s.a.Score, src[s.lo:s.hi])
		pos = s.hi
	}
	b.WriteString(src[pos:])
	return b.String()
}
