// Package annotate renders the user-facing half of Contextual Shortcuts:
// detected entities become "intelligent hyperlinks (shortcuts)" in the
// document HTML, and "clicking on a Shortcut results in a small overlay
// window appearing next to the detected entity, which shows content
// relevant to that entity, e.g. a map for a place or address, or news/web
// search results for a person" (paper §II).
//
// The renderer is decoupled from content resolution through the
// ContentProvider interface; the default provider resolves overlays from
// the same substrates the detection pipeline uses (search engine,
// suggestions, Wikipedia, geo data-packs).
package annotate

import (
	"fmt"
	"html"
	"sort"
	"strings"

	"contextrank/internal/detect"
	"contextrank/internal/framework"
	"contextrank/internal/world"
)

// Overlay is the content shown when a shortcut is clicked.
type Overlay struct {
	// Title heads the overlay window.
	Title string
	// Kind tags the overlay template ("map", "search", "related",
	// "article", "contact").
	Kind string
	// Lines are the overlay body lines (search snippets, related queries,
	// coordinates, ...).
	Lines []string
}

// ContentProvider resolves the overlay for one detection.
type ContentProvider interface {
	Overlay(d detect.Detection) Overlay
}

// Renderer produces annotated HTML.
type Renderer struct {
	Provider ContentProvider
	// MaxOverlayLines truncates overlay bodies. Default 4.
	MaxOverlayLines int
}

// NewRenderer wraps a content provider.
func NewRenderer(p ContentProvider) *Renderer {
	return &Renderer{Provider: p, MaxOverlayLines: 4}
}

// Render returns the document as HTML with each annotation wrapped in a
// shortcut span carrying its overlay. Annotations must carry offsets into
// text (as produced by the runtime); overlapping or out-of-range
// annotations are skipped defensively.
func (r *Renderer) Render(text string, anns []framework.Annotation) string {
	sorted := make([]framework.Annotation, len(anns))
	copy(sorted, anns)
	sort.SliceStable(sorted, func(i, j int) bool {
		return sorted[i].Detection.Start < sorted[j].Detection.Start
	})

	var b strings.Builder
	b.Grow(len(text) + 64*len(sorted))
	pos := 0
	for _, a := range sorted {
		d := a.Detection
		if d.Start < pos || d.End > len(text) || d.End <= d.Start {
			continue // overlapping or invalid span
		}
		b.WriteString(html.EscapeString(text[pos:d.Start]))
		r.renderShortcut(&b, text[d.Start:d.End], a)
		pos = d.End
	}
	b.WriteString(html.EscapeString(text[pos:]))
	return b.String()
}

func (r *Renderer) renderShortcut(b *strings.Builder, surface string, a framework.Annotation) {
	d := a.Detection
	class := "shortcut shortcut-" + d.Kind.String()
	if d.Kind == detect.KindNamed && d.Entry != nil {
		class += " shortcut-" + d.Entry.Type.String()
	}
	fmt.Fprintf(b, `<span class=%q data-concept=%q data-score="%.3f">`,
		class, html.EscapeString(d.Norm), a.Score)
	b.WriteString(html.EscapeString(surface))
	if r.Provider != nil {
		overlay := r.Provider.Overlay(d)
		lines := overlay.Lines
		if r.MaxOverlayLines > 0 && len(lines) > r.MaxOverlayLines {
			lines = lines[:r.MaxOverlayLines]
		}
		fmt.Fprintf(b, `<span class="overlay overlay-%s"><strong>%s</strong>`,
			html.EscapeString(overlay.Kind), html.EscapeString(overlay.Title))
		for _, line := range lines {
			fmt.Fprintf(b, `<em>%s</em>`, html.EscapeString(line))
		}
		b.WriteString(`</span>`)
	}
	b.WriteString(`</span>`)
}

// DefaultProvider resolves overlays from the platform's substrates, per the
// paper's per-type examples. The function fields decouple it from concrete
// substrate types; nil fields disable that content source.
type DefaultProvider struct {
	// Snippets returns top-k search result snippets for a phrase
	// (searchsim.Engine.Snippets).
	Snippets func(phrase string, k int) []string
	// Related returns up to max related query strings
	// (wrap searchsim.Suggestor.Suggest).
	Related func(query string, max int) []string
	// ArticleWords returns the encyclopedia article length, 0 if absent
	// (wiki.Encyclopedia.WordCount).
	ArticleWords func(concept string) int
}

// Overlay implements ContentProvider.
func (p *DefaultProvider) Overlay(d detect.Detection) Overlay {
	switch d.Kind {
	case detect.KindPattern:
		return patternOverlay(d)
	case detect.KindNamed:
		return p.namedOverlay(d)
	default:
		return p.conceptOverlay(d)
	}
}

func patternOverlay(d detect.Detection) Overlay {
	switch d.PatternType {
	case "email":
		return Overlay{Title: "Send email", Kind: "contact", Lines: []string{"mailto:" + d.Norm}}
	case "phone":
		return Overlay{Title: "Call", Kind: "contact", Lines: []string{"tel:" + d.Norm}}
	default:
		return Overlay{Title: "Open link", Kind: "contact", Lines: []string{d.Norm}}
	}
}

func (p *DefaultProvider) namedOverlay(d detect.Detection) Overlay {
	// Places with geo metadata get a map, the paper's flagship example.
	if d.Entry != nil && d.Entry.Type == world.TypePlace && d.Entry.Geo != nil {
		return Overlay{
			Title: "Map of " + d.Norm,
			Kind:  "map",
			Lines: []string{fmt.Sprintf("lat %.3f, lon %.3f", d.Entry.Geo.Lat, d.Entry.Geo.Lon)},
		}
	}
	// Other named entities get news/web search results.
	o := Overlay{Title: "Search results for " + d.Norm, Kind: "search"}
	if p.Snippets != nil {
		o.Lines = p.Snippets(d.Norm, 3)
	}
	if p.ArticleWords != nil {
		if wc := p.ArticleWords(d.Norm); wc > 0 {
			o.Lines = append(o.Lines, fmt.Sprintf("encyclopedia article (%d words)", wc))
		}
	}
	return o
}

func (p *DefaultProvider) conceptOverlay(d detect.Detection) Overlay {
	o := Overlay{Title: "Related to " + d.Norm, Kind: "related"}
	if p.Related != nil {
		o.Lines = p.Related(d.Norm, 3)
	}
	if len(o.Lines) == 0 && p.Snippets != nil {
		o.Kind = "search"
		o.Lines = p.Snippets(d.Norm, 2)
	}
	return o
}
