package resilience

import (
	"bytes"
	"context"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync/atomic"
	"testing"
	"time"
)

// flaky fails the first n attempts with the given status, then succeeds.
type flaky struct {
	failures int32
	status   int
	calls    atomic.Int32
	echoBody bool
}

func (f *flaky) handler(w http.ResponseWriter, r *http.Request) {
	call := f.calls.Add(1)
	if call <= f.failures {
		if f.status == http.StatusTooManyRequests {
			w.Header().Set("Retry-After", "0")
		}
		http.Error(w, "try later", f.status)
		return
	}
	if f.echoBody {
		body, _ := io.ReadAll(r.Body)
		_, _ = w.Write(body)
		return
	}
	_, _ = io.WriteString(w, "done")
}

func newRetryForTest(t *testing.T, d Doer, seed int64) (*RetryClient, *[]time.Duration) {
	t.Helper()
	var slept []time.Duration
	c := NewRetryClient(d, seed)
	c.BaseDelay = 10 * time.Millisecond
	c.MaxDelay = 80 * time.Millisecond
	c.Sleep = func(dur time.Duration) { slept = append(slept, dur) }
	return c, &slept
}

func TestRetryEventuallySucceeds(t *testing.T) {
	for _, status := range []int{http.StatusTooManyRequests, http.StatusServiceUnavailable, http.StatusInternalServerError} {
		f := &flaky{failures: 2, status: status}
		srv := httptest.NewServer(http.HandlerFunc(f.handler))
		c, _ := newRetryForTest(t, srv.Client(), 1)
		req, err := http.NewRequest(http.MethodGet, srv.URL, nil)
		if err != nil {
			t.Fatal(err)
		}
		resp, body, err := c.DoRead(req)
		if err != nil {
			t.Fatalf("status %d: %v", status, err)
		}
		if resp.StatusCode != http.StatusOK || string(body) != "done" {
			t.Fatalf("status %d: got %d %q", status, resp.StatusCode, body)
		}
		if f.calls.Load() != 3 {
			t.Fatalf("status %d: %d attempts, want 3", status, f.calls.Load())
		}
		srv.Close()
	}
}

func TestRetryReplaysPostBody(t *testing.T) {
	f := &flaky{failures: 2, status: http.StatusServiceUnavailable, echoBody: true}
	srv := httptest.NewServer(http.HandlerFunc(f.handler))
	defer srv.Close()
	c, _ := newRetryForTest(t, srv.Client(), 1)
	req, err := http.NewRequest(http.MethodPost, srv.URL, bytes.NewReader([]byte(`{"text":"x"}`)))
	if err != nil {
		t.Fatal(err)
	}
	_, body, err := c.DoRead(req)
	if err != nil {
		t.Fatal(err)
	}
	if string(body) != `{"text":"x"}` {
		t.Fatalf("replayed body = %q", body)
	}
}

func TestRetryGivesUpAfterMaxAttempts(t *testing.T) {
	f := &flaky{failures: 100, status: http.StatusServiceUnavailable}
	srv := httptest.NewServer(http.HandlerFunc(f.handler))
	defer srv.Close()
	c, _ := newRetryForTest(t, srv.Client(), 1)
	c.MaxAttempts = 3
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	if _, err := c.Do(req); err == nil {
		t.Fatal("expected error after exhausting attempts")
	}
	if f.calls.Load() != 3 {
		t.Fatalf("%d attempts, want 3", f.calls.Load())
	}
}

func TestRetryDoesNotRetryFinalStatuses(t *testing.T) {
	f := &flaky{failures: 100, status: http.StatusBadRequest}
	srv := httptest.NewServer(http.HandlerFunc(f.handler))
	defer srv.Close()
	c, _ := newRetryForTest(t, srv.Client(), 1)
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if resp.StatusCode != http.StatusBadRequest || f.calls.Load() != 1 {
		t.Fatalf("400 must be final: status=%d attempts=%d", resp.StatusCode, f.calls.Load())
	}
}

// failingDoer always errors at the transport level.
type failingDoer struct{ calls int }

func (f *failingDoer) Do(*http.Request) (*http.Response, error) {
	f.calls++
	return nil, errors.New("connection refused")
}

// TestRetryBackoffSeededAndCapped: the backoff schedule is a pure function
// of the seed — two clients with the same seed sleep identical durations,
// a different seed jitters differently, and every delay stays within
// [base/2, max].
func TestRetryBackoffSeededAndCapped(t *testing.T) {
	schedule := func(seed int64) []time.Duration {
		c, slept := newRetryForTest(t, &failingDoer{}, seed)
		c.MaxAttempts = 6
		req, _ := http.NewRequest(http.MethodGet, "http://unreachable.invalid/", nil)
		if _, err := c.Do(req); err == nil {
			t.Fatal("expected transport error")
		}
		return *slept
	}
	a, b := schedule(5), schedule(5)
	if !reflect.DeepEqual(a, b) {
		t.Fatalf("same seed, different schedules: %v vs %v", a, b)
	}
	if len(a) != 5 {
		t.Fatalf("slept %d times, want 5", len(a))
	}
	if reflect.DeepEqual(a, schedule(6)) {
		t.Fatal("different seeds produced identical jitter")
	}
	for i, d := range a {
		if d < 5*time.Millisecond || d > 80*time.Millisecond {
			t.Fatalf("delay %d = %v outside [base/2, max]", i, d)
		}
	}
	// Later delays must reach the cap region (exponent grows past max).
	if last := a[len(a)-1]; last < 40*time.Millisecond {
		t.Fatalf("final delay %v never approached the 80ms cap", last)
	}
}

func TestRetryHonorsRetryAfter(t *testing.T) {
	calls := 0
	h := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) {
		calls++
		if calls == 1 {
			w.Header().Set("Retry-After", "7")
			w.WriteHeader(http.StatusTooManyRequests)
			return
		}
		_, _ = io.WriteString(w, "ok")
	})
	srv := httptest.NewServer(h)
	defer srv.Close()
	c, slept := newRetryForTest(t, srv.Client(), 1)
	c.MaxDelay = 3 * time.Second
	req, _ := http.NewRequest(http.MethodGet, srv.URL, nil)
	resp, err := c.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	_ = resp.Body.Close()
	if len(*slept) != 1 || (*slept)[0] != 3*time.Second {
		t.Fatalf("slept %v, want the 7s Retry-After capped to MaxDelay=3s", *slept)
	}
}

func TestRetryNonReplayableBodyFailsCleanly(t *testing.T) {
	f := &flaky{failures: 100, status: http.StatusServiceUnavailable}
	srv := httptest.NewServer(http.HandlerFunc(f.handler))
	defer srv.Close()
	c, _ := newRetryForTest(t, srv.Client(), 1)
	req, _ := http.NewRequest(http.MethodPost, srv.URL, io.NopCloser(strings.NewReader("stream")))
	req.GetBody = nil
	_, err := c.Do(req)
	if err == nil || !strings.Contains(err.Error(), "non-replayable") {
		t.Fatalf("err = %v, want non-replayable body error", err)
	}
}

// TestRetryCancelMidBackoffWakesImmediately is the satellite regression
// for the backoff sleep: cancelling the request context during a long
// backoff must wake the wait and surface ctx.Err(), not sleep it out.
func TestRetryCancelMidBackoffWakesImmediately(t *testing.T) {
	c := NewRetryClient(&failingDoer{}, 1)
	c.BaseDelay = 10 * time.Second // without the ctx-aware sleep this hangs
	c.MaxDelay = 10 * time.Second
	ctx, cancel := context.WithCancel(context.Background())
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://unreachable.invalid/", nil)
	go func() {
		time.Sleep(20 * time.Millisecond)
		cancel()
	}()
	start := time.Now()
	_, err := c.Do(req)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v to wake the backoff sleep", elapsed)
	}
}

// TestRetryNeverSleepsPastDeadline: the backoff delay is clamped to the
// remaining deadline budget — a request with 50ms left must not be parked
// for a multi-second backoff step, and an expired deadline short-circuits
// before any sleep.
func TestRetryNeverSleepsPastDeadline(t *testing.T) {
	c := NewRetryClient(&failingDoer{}, 1)
	c.BaseDelay = 30 * time.Second
	c.MaxDelay = 30 * time.Second
	ctx, cancel := context.WithTimeout(context.Background(), 50*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://unreachable.invalid/", nil)
	start := time.Now()
	_, err := c.Do(req)
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want context.DeadlineExceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("deadline-bound retry took %v", elapsed)
	}
}

// TestRetryCancelledBeforeBackoffSkipsSleep: an already-cancelled context
// returns immediately with the context error — even with a test Sleep
// hook installed, which must never extend a cancelled request.
func TestRetryCancelledBeforeBackoffSkipsSleep(t *testing.T) {
	d := &failingDoer{}
	c, slept := newRetryForTest(t, d, 1)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req, _ := http.NewRequestWithContext(ctx, http.MethodGet, "http://unreachable.invalid/", nil)
	_, err := c.Do(req)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	if len(*slept) != 0 {
		t.Fatalf("cancelled request still slept: %v", *slept)
	}
	if d.calls != 1 {
		t.Fatalf("cancelled request made %d attempts, want 1 (the in-flight one)", d.calls)
	}
}
