package resilience

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"
)

func testCfg(seed int64) InjectorConfig {
	return InjectorConfig{
		Seed:         seed,
		LatencyP:     0.3,
		LatencySpike: time.Millisecond,
		PanicP:       0.25,
		WriteFailP:   0.2,
	}
}

// TestInjectorDeterministicPlans: same seed → bit-identical plan sequence;
// different seed → a different one (with overwhelming probability at n=200).
func TestInjectorDeterministicPlans(t *testing.T) {
	plans := func(seed int64, n int) []FaultPlan {
		inj := NewInjector(testCfg(seed))
		out := make([]FaultPlan, n)
		for i := range out {
			out[i] = inj.Plan()
		}
		return out
	}
	a, b := plans(7, 200), plans(7, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plan sequences")
	}
	if reflect.DeepEqual(a, plans(8, 200)) {
		t.Fatal("different seeds produced identical plan sequences")
	}
	// The mix must actually contain every fault class at these rates.
	var lat, pan, wf int
	for _, p := range a {
		if p.Latency > 0 {
			lat++
		}
		if p.Panic {
			pan++
		}
		if p.FailWrite {
			wf++
		}
	}
	if lat == 0 || pan == 0 || wf == 0 {
		t.Fatalf("degenerate fault mix: lat=%d panics=%d writefails=%d", lat, pan, wf)
	}
}

// TestInjectorPlanMatchesPlanAt: Plan() is PlanAt over an arrival counter,
// so totals under concurrency equal the serial derivation.
func TestInjectorPlanMatchesPlanAt(t *testing.T) {
	const n = 100
	cfg := testCfg(99)
	inj := NewInjector(cfg)
	var mu sync.Mutex
	var gotPanics, gotWF, gotLat int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := inj.Plan()
			mu.Lock()
			defer mu.Unlock()
			if p.Panic {
				gotPanics++
			}
			if p.FailWrite {
				gotWF++
			}
			if p.Latency > 0 {
				gotLat++
			}
		}()
	}
	wg.Wait()
	ref := NewInjector(cfg)
	var wantPanics, wantWF, wantLat int
	for i := 0; i < n; i++ {
		p := ref.PlanAt(i)
		if p.Panic {
			wantPanics++
		}
		if p.FailWrite {
			wantWF++
		}
		if p.Latency > 0 {
			wantLat++
		}
	}
	if gotPanics != wantPanics || gotWF != wantWF || gotLat != wantLat {
		t.Fatalf("concurrent totals (%d,%d,%d) != serial derivation (%d,%d,%d)",
			gotPanics, gotWF, gotLat, wantPanics, wantWF, wantLat)
	}
}

func TestChaosDelayRespectsDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	ctx = WithPlan(ctx, FaultPlan{Latency: 5 * time.Second})
	start := time.Now()
	ChaosDelay(ctx)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("ChaosDelay slept %v past a 10ms deadline", elapsed)
	}
}

func TestChaosDelayNoPlanIsNoop(t *testing.T) {
	start := time.Now()
	ChaosDelay(context.Background())
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("ChaosDelay without a plan slept")
	}
}

// TestClusterPlanDeterministic: the cluster fault stream is a pure
// function of the seed, mutually exclusive per plan (down wins), and
// independent of the per-request HTTP fault stream — interleaving Plan()
// draws must not shift the cluster schedule.
func TestClusterPlanDeterministic(t *testing.T) {
	cfg := InjectorConfig{Seed: 42, ShardDownP: 0.3, SlowReplicaP: 0.3, SlowReplicaDelay: time.Second}
	serial := NewInjector(cfg)
	interleaved := NewInjector(cfg)
	var downs, slows int
	for i := 0; i < 200; i++ {
		p := serial.ClusterPlan()
		if p != serial.ClusterPlanAt(i) {
			t.Fatalf("ClusterPlan()[%d] != ClusterPlanAt(%d)", i, i)
		}
		interleaved.Plan() // HTTP fault draw must not perturb the cluster stream
		if q := interleaved.ClusterPlan(); q != p {
			t.Fatalf("draw %d: interleaved HTTP plans shifted the cluster stream", i)
		}
		if p.DownPrimary && p.SlowPrimary {
			t.Fatalf("draw %d: down and slow both set", i)
		}
		if p.DownPrimary {
			downs++
		}
		if p.SlowPrimary {
			slows++
		}
	}
	if downs == 0 || slows == 0 {
		t.Fatalf("degenerate cluster mix: downs=%d slows=%d", downs, slows)
	}
	if reflect.DeepEqual(
		[]ClusterFaultPlan{serial.ClusterPlanAt(0), serial.ClusterPlanAt(1), serial.ClusterPlanAt(2), serial.ClusterPlanAt(3)},
		[]ClusterFaultPlan{NewInjector(InjectorConfig{Seed: 43, ShardDownP: 0.3, SlowReplicaP: 0.3}).ClusterPlanAt(0),
			NewInjector(InjectorConfig{Seed: 43, ShardDownP: 0.3, SlowReplicaP: 0.3}).ClusterPlanAt(1),
			NewInjector(InjectorConfig{Seed: 43, ShardDownP: 0.3, SlowReplicaP: 0.3}).ClusterPlanAt(2),
			NewInjector(InjectorConfig{Seed: 43, ShardDownP: 0.3, SlowReplicaP: 0.3}).ClusterPlanAt(3)},
	) {
		// Four identical draws across different seeds is possible but at
		// these rates it is a red flag worth failing on.
		t.Log("warning: seeds 42 and 43 agree on the first four cluster draws")
	}
}

// TestFlapAtPure: FlapAt is a pure function of (seed, round, shard), with
// independent draws per cell of the round x shard grid.
func TestFlapAtPure(t *testing.T) {
	cfg := InjectorConfig{Seed: 42, FlapP: 0.4}
	a, b := NewInjector(cfg), NewInjector(cfg)
	flapped := 0
	for round := 0; round < 20; round++ {
		for shard := 0; shard < 5; shard++ {
			if a.FlapAt(round, shard) != b.FlapAt(round, shard) {
				t.Fatalf("FlapAt(%d,%d) not deterministic", round, shard)
			}
			if a.FlapAt(round, shard) {
				flapped++
			}
		}
	}
	if flapped == 0 || flapped == 100 {
		t.Fatalf("degenerate flap grid: %d of 100", flapped)
	}
	if p := NewInjector(InjectorConfig{Seed: 42}).FlapAt(3, 1); p {
		t.Fatal("FlapP=0 still flapped")
	}
}
