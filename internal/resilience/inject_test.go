package resilience

import (
	"context"
	"reflect"
	"sync"
	"testing"
	"time"
)

func testCfg(seed int64) InjectorConfig {
	return InjectorConfig{
		Seed:         seed,
		LatencyP:     0.3,
		LatencySpike: time.Millisecond,
		PanicP:       0.25,
		WriteFailP:   0.2,
	}
}

// TestInjectorDeterministicPlans: same seed → bit-identical plan sequence;
// different seed → a different one (with overwhelming probability at n=200).
func TestInjectorDeterministicPlans(t *testing.T) {
	plans := func(seed int64, n int) []FaultPlan {
		inj := NewInjector(testCfg(seed))
		out := make([]FaultPlan, n)
		for i := range out {
			out[i] = inj.Plan()
		}
		return out
	}
	a, b := plans(7, 200), plans(7, 200)
	if !reflect.DeepEqual(a, b) {
		t.Fatal("same seed produced different plan sequences")
	}
	if reflect.DeepEqual(a, plans(8, 200)) {
		t.Fatal("different seeds produced identical plan sequences")
	}
	// The mix must actually contain every fault class at these rates.
	var lat, pan, wf int
	for _, p := range a {
		if p.Latency > 0 {
			lat++
		}
		if p.Panic {
			pan++
		}
		if p.FailWrite {
			wf++
		}
	}
	if lat == 0 || pan == 0 || wf == 0 {
		t.Fatalf("degenerate fault mix: lat=%d panics=%d writefails=%d", lat, pan, wf)
	}
}

// TestInjectorPlanMatchesPlanAt: Plan() is PlanAt over an arrival counter,
// so totals under concurrency equal the serial derivation.
func TestInjectorPlanMatchesPlanAt(t *testing.T) {
	const n = 100
	cfg := testCfg(99)
	inj := NewInjector(cfg)
	var mu sync.Mutex
	var gotPanics, gotWF, gotLat int
	var wg sync.WaitGroup
	for i := 0; i < n; i++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			p := inj.Plan()
			mu.Lock()
			defer mu.Unlock()
			if p.Panic {
				gotPanics++
			}
			if p.FailWrite {
				gotWF++
			}
			if p.Latency > 0 {
				gotLat++
			}
		}()
	}
	wg.Wait()
	ref := NewInjector(cfg)
	var wantPanics, wantWF, wantLat int
	for i := 0; i < n; i++ {
		p := ref.PlanAt(i)
		if p.Panic {
			wantPanics++
		}
		if p.FailWrite {
			wantWF++
		}
		if p.Latency > 0 {
			wantLat++
		}
	}
	if gotPanics != wantPanics || gotWF != wantWF || gotLat != wantLat {
		t.Fatalf("concurrent totals (%d,%d,%d) != serial derivation (%d,%d,%d)",
			gotPanics, gotWF, gotLat, wantPanics, wantWF, wantLat)
	}
}

func TestChaosDelayRespectsDeadline(t *testing.T) {
	ctx, cancel := context.WithTimeout(context.Background(), 10*time.Millisecond)
	defer cancel()
	ctx = WithPlan(ctx, FaultPlan{Latency: 5 * time.Second})
	start := time.Now()
	ChaosDelay(ctx)
	if elapsed := time.Since(start); elapsed > time.Second {
		t.Fatalf("ChaosDelay slept %v past a 10ms deadline", elapsed)
	}
}

func TestChaosDelayNoPlanIsNoop(t *testing.T) {
	start := time.Now()
	ChaosDelay(context.Background())
	if time.Since(start) > 100*time.Millisecond {
		t.Fatal("ChaosDelay without a plan slept")
	}
}
