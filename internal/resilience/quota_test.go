package resilience

import (
	"testing"
	"time"
)

// TestQuotaBurstOnly: with rate 0 the bucket is a pure burst budget —
// exactly Burst admissions, then refusals with the fixed 1s hint. This is
// the deterministic configuration the cluster chaos tests pin counters
// against.
func TestQuotaBurstOnly(t *testing.T) {
	q := NewQuota(QuotaConfig{Burst: 3})
	for i := 0; i < 3; i++ {
		if ok, _ := q.Allow("acme"); !ok {
			t.Fatalf("request %d refused within burst", i)
		}
	}
	ok, retryAfter := q.Allow("acme")
	if ok {
		t.Fatal("burst+1 admitted")
	}
	if retryAfter != time.Second {
		t.Fatalf("rate-0 refusal hint %v, want 1s", retryAfter)
	}
	// Other tenants have their own bucket.
	if ok, _ := q.Allow("other"); !ok {
		t.Fatal("second tenant shares the first tenant's bucket")
	}
	if q.Tenants() != 2 {
		t.Fatalf("tenants = %d, want 2", q.Tenants())
	}
}

// TestQuotaRefill: with a rate and an injected clock, tokens come back
// continuously and the refusal hint is the time until one token refills.
func TestQuotaRefill(t *testing.T) {
	now := time.Unix(1000, 0)
	q := NewQuota(QuotaConfig{Burst: 2, RatePerSec: 2, Now: func() time.Time { return now }})
	if ok, _ := q.Allow("t"); !ok {
		t.Fatal("first refused")
	}
	if ok, _ := q.Allow("t"); !ok {
		t.Fatal("second refused")
	}
	ok, retryAfter := q.Allow("t")
	if ok {
		t.Fatal("empty bucket admitted")
	}
	if retryAfter <= 0 || retryAfter > 500*time.Millisecond {
		t.Fatalf("hint %v, want (0, 500ms] at 2 tokens/sec", retryAfter)
	}
	now = now.Add(time.Second) // refills 2 tokens, capped at burst
	if ok, _ := q.Allow("t"); !ok {
		t.Fatal("refused after refill")
	}
	if ok, _ := q.Allow("t"); !ok {
		t.Fatal("second refused after full refill")
	}
	// Refill never exceeds the burst cap.
	now = now.Add(time.Hour)
	for i := 0; i < 2; i++ {
		if ok, _ := q.Allow("t"); !ok {
			t.Fatalf("refill after idle hour: request %d refused", i)
		}
	}
	if ok, _ := q.Allow("t"); ok {
		t.Fatal("idle hour refilled beyond the burst cap")
	}
}

// TestQuotaNilSafe: a nil quota (burst <= 0) admits everything.
func TestQuotaNilSafe(t *testing.T) {
	if NewQuota(QuotaConfig{Burst: 0}) != nil {
		t.Fatal("burst 0 built a quota")
	}
	var q *Quota
	if ok, _ := q.Allow("anyone"); !ok {
		t.Fatal("nil quota refused")
	}
	if q.Tenants() != 0 {
		t.Fatal("nil quota tracks tenants")
	}
}
