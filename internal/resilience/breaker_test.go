package resilience

import "testing"

func testBreakerCfg(stream int) BreakerConfig {
	return BreakerConfig{Threshold: 3, MinSkip: 2, MaxSkip: 5, Seed: 42, Stream: stream}
}

// TestBreakerCooldownSchedule: the cooldown is a pure function of
// (seed, stream, open index), bounded by [MinSkip, MaxSkip], and distinct
// streams draw distinct schedules from one seed.
func TestBreakerCooldownSchedule(t *testing.T) {
	cfg := testBreakerCfg(0)
	for k := 0; k < 100; k++ {
		c := BreakerCooldownAt(cfg, k)
		if c < 2 || c > 5 {
			t.Fatalf("cooldown(%d) = %d outside [2,5]", k, c)
		}
		if c != BreakerCooldownAt(cfg, k) {
			t.Fatalf("cooldown(%d) not deterministic", k)
		}
	}
	same := true
	other := testBreakerCfg(1)
	for k := 0; k < 16 && same; k++ {
		same = BreakerCooldownAt(cfg, k) == BreakerCooldownAt(other, k)
	}
	if same {
		t.Fatal("streams 0 and 1 drew identical 16-draw schedules")
	}
}

// TestBreakerStateMachine walks closed → open → half-open → closed and
// asserts the exact seeded skip counts at each transition.
func TestBreakerStateMachine(t *testing.T) {
	cfg := testBreakerCfg(0)
	b := NewBreaker(cfg)
	// Failures below the threshold keep it closed; a success resets.
	b.OnFailure()
	b.OnFailure()
	b.OnSuccess()
	b.OnFailure()
	b.OnFailure()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v before threshold", b.State())
	}
	b.OnFailure() // streak of 3: trips
	if b.State() != BreakerOpen || b.Opens() != 1 {
		t.Fatalf("state %v opens %d after threshold", b.State(), b.Opens())
	}
	// Exactly cooldown(0) requests are shed, then the next one probes.
	cool := BreakerCooldownAt(cfg, 0)
	for i := 0; i < cool; i++ {
		if d := b.Allow(); d != BreakerSkip {
			t.Fatalf("request %d during cooldown: %v, want skip", i, d)
		}
	}
	if d := b.Allow(); d != BreakerProbe {
		t.Fatalf("after cooldown: %v, want probe", d)
	}
	// While the probe is in flight every other request is shed.
	if d := b.Allow(); d != BreakerSkip {
		t.Fatalf("during probe: %v, want skip", d)
	}
	b.OnSuccess()
	if b.State() != BreakerClosed {
		t.Fatalf("state %v after successful probe", b.State())
	}
	if d := b.Allow(); d != BreakerProceed {
		t.Fatalf("closed breaker: %v, want proceed", d)
	}
}

// TestBreakerFailedProbeReopens: a failed probe re-opens with the next
// cooldown draw, not the first one again.
func TestBreakerFailedProbeReopens(t *testing.T) {
	cfg := testBreakerCfg(0)
	b := NewBreaker(cfg)
	for i := 0; i < 3; i++ {
		b.OnFailure()
	}
	for i := 0; i < BreakerCooldownAt(cfg, 0); i++ {
		b.Allow()
	}
	if d := b.Allow(); d != BreakerProbe {
		t.Fatalf("want probe, got %v", d)
	}
	b.OnFailure() // probe failed
	if b.State() != BreakerOpen || b.Opens() != 2 {
		t.Fatalf("state %v opens %d after failed probe", b.State(), b.Opens())
	}
	cool1 := BreakerCooldownAt(cfg, 1)
	skips := 0
	for b.Allow() == BreakerSkip {
		skips++
	}
	if skips != cool1 {
		t.Fatalf("second cooldown shed %d, want cooldown(1)=%d", skips, cool1)
	}
}

// TestBreakerCanceledProbeRearms: a probe whose attempt was cancelled
// (hedge won, request budget expired) is no evidence — the breaker
// re-opens with a spent cooldown so the next request probes immediately,
// instead of the state wedging half-open forever.
func TestBreakerCanceledProbeRearms(t *testing.T) {
	cfg := testBreakerCfg(0)
	b := NewBreaker(cfg)
	for i := 0; i < 3; i++ {
		b.OnFailure()
	}
	for b.Allow() == BreakerSkip {
	}
	// Now half-open with the probe slot claimed.
	b.OnCanceledProbe()
	if b.State() != BreakerOpen {
		t.Fatalf("state %v after cancelled probe", b.State())
	}
	if d := b.Allow(); d != BreakerProbe {
		t.Fatalf("next request after cancelled probe: %v, want immediate probe", d)
	}
	if b.Opens() != 1 {
		t.Fatalf("cancelled probe consumed a cooldown draw: opens=%d", b.Opens())
	}
}

// TestBreakerNilSafe: a nil breaker (threshold <= 0) is a valid disabled
// value on every method.
func TestBreakerNilSafe(t *testing.T) {
	var b *Breaker
	if NewBreaker(BreakerConfig{Threshold: 0}) != nil {
		t.Fatal("threshold 0 built a breaker")
	}
	if b.Allow() != BreakerProceed || b.State() != BreakerClosed || b.Opens() != 0 {
		t.Fatal("nil breaker not always-proceed")
	}
	b.OnSuccess()
	b.OnFailure()
	b.OnCanceledProbe()
}
