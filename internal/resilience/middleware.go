package resilience

import "net/http"

// Recover is the outermost middleware: a panicking handler becomes a 500
// and a counter instead of a dead process. http.ErrAbortHandler is
// re-raised — it is net/http's sanctioned way to abort a response and
// must keep its meaning.
func Recover(c *Counters, next http.Handler) http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		defer func() {
			rec := recover()
			if rec == nil {
				return
			}
			if rec == http.ErrAbortHandler {
				panic(rec)
			}
			c.PanicsRecovered.Add(1)
			// If the handler already wrote a header this is a no-op write
			// on a committed response; net/http logs and drops it, which
			// is the best that can be done mid-stream.
			http.Error(w, "internal server error", http.StatusInternalServerError)
		}()
		next.ServeHTTP(w, r)
	})
}

// Chaos is the deterministic fault-injection middleware. A nil injector
// disables it (the production default). For each request it draws the
// next fault plan, accounts it, and applies the immediate faults: a
// write-failing response writer and a pre-handler panic. The latency
// fault travels in the request context and is consumed by the handler
// inside its admission slot via ChaosDelay — injected slowness must hold
// capacity exactly like real slow work.
func Chaos(inj *Injector, c *Counters, next http.Handler) http.Handler {
	if inj == nil {
		return next
	}
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		plan := inj.Plan()
		if plan.Latency > 0 {
			c.InjectedLatencies.Add(1)
		}
		if plan.FailWrite {
			c.InjectedWriteFailures.Add(1)
			w = &brokenWriter{ResponseWriter: w}
		}
		r = r.WithContext(WithPlan(r.Context(), plan))
		if plan.Panic {
			c.InjectedPanics.Add(1)
			panic("resilience: injected chaos panic")
		}
		next.ServeHTTP(w, r)
	})
}
