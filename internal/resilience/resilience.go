// Package resilience is the runtime-hardening layer of the serving stack:
// the machinery that lets the annotation service survive the production
// conditions the paper's deployment implies ("successfully deployed on
// various Yahoo! network properties") — slow requests, overload, handler
// panics, and flaky clients — without taking down the process or serving
// garbage.
//
// It is composed of small, independently testable pieces:
//
//   - Gate: bounded-concurrency admission control with a short wait queue.
//     Excess load is shed immediately instead of queueing without bound.
//   - Recover / Chaos: http middleware. Recover converts handler panics to
//     500s plus a counter; Chaos injects faults (latency spikes, panics,
//     write failures) from a deterministic, seeded Injector.
//   - Injector: seeded fault planner. Every request draws its fault plan
//     from an independent splitmix64-derived stream (par.Seed), so a fixed
//     seed reproduces the exact same fault multiset — and therefore the
//     exact same recovery counters — on every run, at any concurrency.
//   - RetryClient: an HTTP client wrapper with capped exponential backoff
//     and seeded jitter, used by the cmd/serve -selftest load probe.
//
// The package deliberately has no opinion about policy (what to do when a
// request is shed or a deadline expires); internal/serve decides that —
// degraded dictionary-only ranking for /v1/annotate, 429 for /v1/render.
package resilience

import "sync/atomic"

// Counters aggregates the resilience events of a server. All fields are
// atomics: they are bumped from concurrent request goroutines.
type Counters struct {
	// PanicsRecovered counts handler panics converted to 500s.
	PanicsRecovered atomic.Int64
	// Shed counts requests refused (or degraded) by admission control.
	Shed atomic.Int64
	// Degraded counts requests answered by the cheap fallback ranking.
	Degraded atomic.Int64
	// DeadlineExpired counts requests whose full pipeline ran out of time.
	DeadlineExpired atomic.Int64
	// QuotaDenied counts requests refused by per-tenant token buckets
	// (429 + Retry-After), before they reach the admission gate.
	QuotaDenied atomic.Int64
	// InjectedLatencies / InjectedPanics / InjectedWriteFailures count the
	// faults the chaos Injector planned (whether or not a handler consumed
	// them).
	InjectedLatencies     atomic.Int64
	InjectedPanics        atomic.Int64
	InjectedWriteFailures atomic.Int64
}

// Snapshot is the JSON-serializable view of Counters, embedded in /statz.
type Snapshot struct {
	PanicsRecovered       int64 `json:"panics_recovered"`
	Shed                  int64 `json:"shed"`
	Degraded              int64 `json:"degraded"`
	DeadlineExpired       int64 `json:"deadline_expired"`
	QuotaDenied           int64 `json:"quota_denied"`
	InjectedLatencies     int64 `json:"injected_latencies"`
	InjectedPanics        int64 `json:"injected_panics"`
	InjectedWriteFailures int64 `json:"injected_write_failures"`
}

// Snapshot reads every counter once. The reads are not a single atomic
// transaction; the snapshot is a monitoring view, not a ledger.
func (c *Counters) Snapshot() Snapshot {
	return Snapshot{
		PanicsRecovered:       c.PanicsRecovered.Load(),
		Shed:                  c.Shed.Load(),
		Degraded:              c.Degraded.Load(),
		DeadlineExpired:       c.DeadlineExpired.Load(),
		QuotaDenied:           c.QuotaDenied.Load(),
		InjectedLatencies:     c.InjectedLatencies.Load(),
		InjectedPanics:        c.InjectedPanics.Load(),
		InjectedWriteFailures: c.InjectedWriteFailures.Load(),
	}
}
