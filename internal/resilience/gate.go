package resilience

import (
	"context"
	"errors"
	"time"
)

// ErrShed is returned by Gate.Acquire when the request cannot be admitted:
// every slot is busy and either the wait queue is full or the queue wait
// timed out. Callers translate it into policy (429, degraded response).
var ErrShed = errors.New("resilience: admission gate shed request")

// Gate is the admission controller: at most capacity requests run
// concurrently, at most queueLen more wait up to maxWait for a slot, and
// everything beyond that is shed immediately. Bounding both dimensions
// keeps latency under overload flat — a request either runs soon or is
// refused fast, never parked in an unbounded FIFO until the box tips over.
type Gate struct {
	slots   chan struct{}
	queue   chan struct{}
	maxWait time.Duration
}

// NewGate builds a gate. capacity is clamped to ≥1; queueLen to ≥0. A
// maxWait ≤ 0 disables waiting: when no slot is free the request is shed
// on the spot regardless of queueLen.
func NewGate(capacity, queueLen int, maxWait time.Duration) *Gate {
	if capacity < 1 {
		capacity = 1
	}
	if queueLen < 0 {
		queueLen = 0
	}
	return &Gate{
		slots:   make(chan struct{}, capacity),
		queue:   make(chan struct{}, queueLen),
		maxWait: maxWait,
	}
}

// Acquire admits the request or refuses it. On success the returned
// release function must be called exactly once when the request's gated
// work is done. On refusal it returns ErrShed (gate full) or the context
// error (caller's deadline expired while queued).
func (g *Gate) Acquire(ctx context.Context) (release func(), err error) {
	// Fast path: a slot is free right now.
	select {
	case g.slots <- struct{}{}:
		return g.release, nil
	default:
	}
	if g.maxWait <= 0 {
		return nil, ErrShed
	}
	// Join the bounded wait queue, or shed if it is full too.
	select {
	case g.queue <- struct{}{}:
	default:
		return nil, ErrShed
	}
	defer func() { <-g.queue }()

	timer := time.NewTimer(g.maxWait)
	defer timer.Stop()
	select {
	case g.slots <- struct{}{}:
		return g.release, nil
	case <-timer.C:
		return nil, ErrShed
	case <-ctx.Done():
		return nil, ctx.Err()
	}
}

func (g *Gate) release() { <-g.slots }

// InFlight is the number of admitted requests currently holding a slot.
func (g *Gate) InFlight() int { return len(g.slots) }

// QueueDepth is the number of requests currently waiting for a slot.
func (g *Gate) QueueDepth() int { return len(g.queue) }

// Capacity is the concurrent-request bound.
func (g *Gate) Capacity() int { return cap(g.slots) }
