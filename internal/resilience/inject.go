package resilience

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sync/atomic"
	"time"

	"contextrank/internal/par"
)

// FaultPlan is the set of faults one request will experience. Plans are
// drawn per request from an independent seeded stream, so the multiset of
// plans over N requests is a pure function of (seed, N) — the basis for
// the bit-identical recovery counters the chaos tests assert.
type FaultPlan struct {
	// Latency is an injected processing delay, applied cooperatively by
	// the handler inside its admission slot (see ChaosDelay), bounded by
	// the request deadline.
	Latency time.Duration
	// Panic makes the chaos middleware panic before the handler runs; the
	// Recover middleware must turn it into a 500.
	Panic bool
	// FailWrite makes every response-body write fail, simulating a client
	// that disconnected mid-response.
	FailWrite bool
}

// InjectorConfig parameterizes the fault mix. Probabilities are in [0,1];
// zero disables that fault class. Seed must be injected by the caller
// (flag, config) — the whole point is reproducing a run.
//
// The cluster fields drive the router-side fault planes (ClusterPlanAt,
// FlapAt): simulated shard crashes, slow replicas, and flapping health
// probes, drawn from streams independent of the per-request HTTP fault
// stream so enabling one mode never perturbs the other's schedule.
type InjectorConfig struct {
	Seed         int64
	LatencyP     float64
	LatencySpike time.Duration
	PanicP       float64
	WriteFailP   float64

	// ShardDownP is the probability a routed request's primary replica
	// attempt fails instantly (the router-side simulation of a crashed
	// shard: indistinguishable from a refused connection).
	ShardDownP float64
	// SlowReplicaP is the probability the primary attempt stalls for
	// SlowReplicaDelay before reaching the shard — long enough to trip
	// hedging or the per-try deadline. Down and slow are mutually
	// exclusive per plan; the down draw wins.
	SlowReplicaP     float64
	SlowReplicaDelay time.Duration
	// FlapP is the probability one health probe of one shard is forced to
	// fail, flapping the shard unhealthy until the next clean probe round.
	FlapP float64
}

// Injector plans faults deterministically. Request i draws from a
// rand.Source seeded with par.Seed(cfg.Seed, i) — the same splitmix64
// derivation the parallel pipeline uses for its sharded streams — so
// neighbouring requests get statistically independent faults and a fixed
// seed fixes the entire fault sequence.
type Injector struct {
	cfg         InjectorConfig
	next        atomic.Int64
	nextCluster atomic.Int64
}

// NewInjector builds an injector from a config.
func NewInjector(cfg InjectorConfig) *Injector { return &Injector{cfg: cfg} }

// Config returns the injector's configuration (the cluster router reads
// SlowReplicaDelay when applying a slow-replica plan).
func (inj *Injector) Config() InjectorConfig { return inj.cfg }

// Plan assigns the next request index and returns its fault plan. Indexes
// are handed out in arrival order; under concurrency the index→request
// assignment varies with scheduling, but the multiset of plans over any N
// requests does not.
func (inj *Injector) Plan() FaultPlan {
	return inj.PlanAt(int(inj.next.Add(1) - 1))
}

// PlanAt is the pure planning function: the plan of request index i. The
// draw order (latency, panic, write-failure) is part of the determinism
// contract — tests re-derive expected counters by replaying PlanAt.
func (inj *Injector) PlanAt(i int) FaultPlan {
	rng := rand.New(rand.NewSource(par.Seed(inj.cfg.Seed, i)))
	var p FaultPlan
	if rng.Float64() < inj.cfg.LatencyP {
		p.Latency = inj.cfg.LatencySpike
	}
	if rng.Float64() < inj.cfg.PanicP {
		p.Panic = true
	}
	if rng.Float64() < inj.cfg.WriteFailP {
		p.FailWrite = true
	}
	return p
}

// Stream salts keep the cluster fault planes statistically independent of
// the per-request HTTP fault stream (which draws from par.Seed(seed, i)
// directly): each plane derives from a distinct salted seed, so enabling
// cluster chaos never shifts the HTTP fault schedule and vice versa. The
// salt values are part of the determinism contract — tests replay the
// same derivation through ClusterPlanAt / FlapAt.
const (
	clusterStreamSalt int64 = 0x636c7573746572 // "cluster"
	flapStreamSalt    int64 = 0x666c6170       // "flap"
	// flapRoundStride spaces probe rounds in the flap stream; shard
	// indexes must stay below it.
	flapRoundStride = 1024
)

// ClusterFaultPlan is the set of router-side faults one routed request
// will experience. At most one of the two is set: the down draw wins.
type ClusterFaultPlan struct {
	// DownPrimary fails the primary replica attempt instantly, forcing a
	// failover to the next replica on the ring.
	DownPrimary bool
	// SlowPrimary stalls the primary attempt for SlowReplicaDelay,
	// forcing the hedge (or the per-try deadline) to win.
	SlowPrimary bool
}

// ClusterPlan assigns the next routed-request index and returns its
// cluster fault plan. Like Plan, indexes are handed out in arrival order;
// the plan multiset over N routed requests is a pure function of (seed, N).
func (inj *Injector) ClusterPlan() ClusterFaultPlan {
	return inj.ClusterPlanAt(int(inj.nextCluster.Add(1) - 1))
}

// ClusterPlanAt is the pure cluster planning function: the plan of routed
// request index i. Two draws in fixed order — down, then slow — with the
// down draw winning when both hit; tests re-derive expected failover and
// hedge counters by replaying it.
func (inj *Injector) ClusterPlanAt(i int) ClusterFaultPlan {
	rng := rand.New(rand.NewSource(par.Seed(inj.cfg.Seed^clusterStreamSalt, i)))
	down := rng.Float64() < inj.cfg.ShardDownP
	slow := rng.Float64() < inj.cfg.SlowReplicaP
	return ClusterFaultPlan{DownPrimary: down, SlowPrimary: !down && slow}
}

// FlapAt is the pure health-flap function: whether probe round r of shard
// s is forced to fail. Rounds are assigned by the router's prober in
// call order; tests drive probe rounds explicitly and replay FlapAt to
// predict exact health-skip counters.
func (inj *Injector) FlapAt(round, shard int) bool {
	rng := rand.New(rand.NewSource(par.Seed(inj.cfg.Seed^flapStreamSalt, round*flapRoundStride+shard)))
	return rng.Float64() < inj.cfg.FlapP
}

// planKey carries the request's FaultPlan through its context.
type planKey struct{}

// WithPlan attaches a fault plan to a context.
func WithPlan(ctx context.Context, p FaultPlan) context.Context {
	return context.WithValue(ctx, planKey{}, p)
}

// PlanFrom extracts the fault plan attached by the chaos middleware.
func PlanFrom(ctx context.Context) (FaultPlan, bool) {
	p, ok := ctx.Value(planKey{}).(FaultPlan)
	return p, ok
}

// ChaosDelay applies the context's planned latency spike, if any. It is
// called by handlers inside their admission slot — injected latency must
// occupy capacity like real slow work would — and it wakes early when the
// request deadline expires, so a spike can never push a response past
// deadline + grace.
func ChaosDelay(ctx context.Context) {
	p, ok := PlanFrom(ctx)
	if !ok || p.Latency <= 0 {
		return
	}
	timer := time.NewTimer(p.Latency)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
	}
}

// ErrInjectedWrite is the error every write on a fault-injected response
// writer returns.
var ErrInjectedWrite = errors.New("resilience: injected write failure")

// brokenWriter simulates a client that went away: headers still "send",
// body writes all fail. The serve layer's write-error accounting must see
// exactly one error per encoded response.
type brokenWriter struct{ http.ResponseWriter }

func (b *brokenWriter) Write([]byte) (int, error) { return 0, ErrInjectedWrite }
