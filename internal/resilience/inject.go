package resilience

import (
	"context"
	"errors"
	"math/rand"
	"net/http"
	"sync/atomic"
	"time"

	"contextrank/internal/par"
)

// FaultPlan is the set of faults one request will experience. Plans are
// drawn per request from an independent seeded stream, so the multiset of
// plans over N requests is a pure function of (seed, N) — the basis for
// the bit-identical recovery counters the chaos tests assert.
type FaultPlan struct {
	// Latency is an injected processing delay, applied cooperatively by
	// the handler inside its admission slot (see ChaosDelay), bounded by
	// the request deadline.
	Latency time.Duration
	// Panic makes the chaos middleware panic before the handler runs; the
	// Recover middleware must turn it into a 500.
	Panic bool
	// FailWrite makes every response-body write fail, simulating a client
	// that disconnected mid-response.
	FailWrite bool
}

// InjectorConfig parameterizes the fault mix. Probabilities are in [0,1];
// zero disables that fault class. Seed must be injected by the caller
// (flag, config) — the whole point is reproducing a run.
type InjectorConfig struct {
	Seed         int64
	LatencyP     float64
	LatencySpike time.Duration
	PanicP       float64
	WriteFailP   float64
}

// Injector plans faults deterministically. Request i draws from a
// rand.Source seeded with par.Seed(cfg.Seed, i) — the same splitmix64
// derivation the parallel pipeline uses for its sharded streams — so
// neighbouring requests get statistically independent faults and a fixed
// seed fixes the entire fault sequence.
type Injector struct {
	cfg  InjectorConfig
	next atomic.Int64
}

// NewInjector builds an injector from a config.
func NewInjector(cfg InjectorConfig) *Injector { return &Injector{cfg: cfg} }

// Plan assigns the next request index and returns its fault plan. Indexes
// are handed out in arrival order; under concurrency the index→request
// assignment varies with scheduling, but the multiset of plans over any N
// requests does not.
func (inj *Injector) Plan() FaultPlan {
	return inj.PlanAt(int(inj.next.Add(1) - 1))
}

// PlanAt is the pure planning function: the plan of request index i. The
// draw order (latency, panic, write-failure) is part of the determinism
// contract — tests re-derive expected counters by replaying PlanAt.
func (inj *Injector) PlanAt(i int) FaultPlan {
	rng := rand.New(rand.NewSource(par.Seed(inj.cfg.Seed, i)))
	var p FaultPlan
	if rng.Float64() < inj.cfg.LatencyP {
		p.Latency = inj.cfg.LatencySpike
	}
	if rng.Float64() < inj.cfg.PanicP {
		p.Panic = true
	}
	if rng.Float64() < inj.cfg.WriteFailP {
		p.FailWrite = true
	}
	return p
}

// planKey carries the request's FaultPlan through its context.
type planKey struct{}

// WithPlan attaches a fault plan to a context.
func WithPlan(ctx context.Context, p FaultPlan) context.Context {
	return context.WithValue(ctx, planKey{}, p)
}

// PlanFrom extracts the fault plan attached by the chaos middleware.
func PlanFrom(ctx context.Context) (FaultPlan, bool) {
	p, ok := ctx.Value(planKey{}).(FaultPlan)
	return p, ok
}

// ChaosDelay applies the context's planned latency spike, if any. It is
// called by handlers inside their admission slot — injected latency must
// occupy capacity like real slow work would — and it wakes early when the
// request deadline expires, so a spike can never push a response past
// deadline + grace.
func ChaosDelay(ctx context.Context) {
	p, ok := PlanFrom(ctx)
	if !ok || p.Latency <= 0 {
		return
	}
	timer := time.NewTimer(p.Latency)
	defer timer.Stop()
	select {
	case <-timer.C:
	case <-ctx.Done():
	}
}

// ErrInjectedWrite is the error every write on a fault-injected response
// writer returns.
var ErrInjectedWrite = errors.New("resilience: injected write failure")

// brokenWriter simulates a client that went away: headers still "send",
// body writes all fail. The serve layer's write-error accounting must see
// exactly one error per encoded response.
type brokenWriter struct{ http.ResponseWriter }

func (b *brokenWriter) Write([]byte) (int, error) { return 0, ErrInjectedWrite }
