package resilience

import (
	"sync/atomic"
	"time"

	"contextrank/internal/par"
)

// HedgeSchedule derives the per-request hedge delay: how long the router
// waits on the primary replica before firing a duplicate request at the
// next one. Delays are Base plus seeded jitter in [0, Jitter], drawn per
// request from a splitmix64 stream — the schedule is a pure function of
// (seed, requestIndex), so a fixed seed replays the exact same hedge
// timings, and DelayAt lets tests re-derive every draw.
//
// The determinism rule for hedge *counters* (DESIGN.md §8) is stricter
// than the delay schedule: a hedge fires iff the primary has neither
// succeeded nor failed when the timer expires, so in chaos runs the
// configuration must keep Base+Jitter comfortably above healthy response
// times and below the injected slow-replica delay. Then hedges fired ==
// planned slow-primary faults, exactly.
type HedgeSchedule struct {
	base, jitter time.Duration
	seed         int64
	next         atomic.Int64
}

// NewHedgeSchedule builds a schedule, or returns nil when base <= 0
// (hedging disabled; a nil *HedgeSchedule is a valid off value).
func NewHedgeSchedule(base, jitter time.Duration, seed int64) *HedgeSchedule {
	if base <= 0 {
		return nil
	}
	if jitter < 0 {
		jitter = 0
	}
	return &HedgeSchedule{base: base, jitter: jitter, seed: seed}
}

// Next assigns the next request index and returns its hedge delay.
func (h *HedgeSchedule) Next() time.Duration {
	return h.DelayAt(int(h.next.Add(1) - 1))
}

// DelayAt is the pure schedule function: the hedge delay of request index
// i.
func (h *HedgeSchedule) DelayAt(i int) time.Duration {
	if h.jitter == 0 {
		return h.base
	}
	v := uint64(par.Seed(h.seed, i))
	return h.base + time.Duration(v%uint64(h.jitter+1))
}
