package resilience

import (
	"net/http"
	"net/http/httptest"
	"testing"
	"time"
)

func TestRecoverConvertsPanicTo500(t *testing.T) {
	var c Counters
	h := Recover(&c, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic("boom")
	}))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != http.StatusInternalServerError {
		t.Fatalf("status = %d, want 500", rec.Code)
	}
	if c.PanicsRecovered.Load() != 1 {
		t.Fatalf("PanicsRecovered = %d, want 1", c.PanicsRecovered.Load())
	}
}

func TestRecoverPassesThroughAbortHandler(t *testing.T) {
	var c Counters
	h := Recover(&c, http.HandlerFunc(func(http.ResponseWriter, *http.Request) {
		panic(http.ErrAbortHandler)
	}))
	defer func() {
		if recover() != http.ErrAbortHandler {
			t.Fatal("ErrAbortHandler was swallowed")
		}
		if c.PanicsRecovered.Load() != 0 {
			t.Fatal("ErrAbortHandler must not count as a recovered panic")
		}
	}()
	h.ServeHTTP(httptest.NewRecorder(), httptest.NewRequest(http.MethodGet, "/", nil))
}

func TestChaosNilInjectorIsIdentity(t *testing.T) {
	var c Counters
	inner := http.HandlerFunc(func(w http.ResponseWriter, _ *http.Request) { w.WriteHeader(204) })
	rec := httptest.NewRecorder()
	Chaos(nil, &c, inner).ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
	if rec.Code != 204 {
		t.Fatal("nil-injector chaos altered behavior")
	}
	if c.Snapshot() != (Snapshot{}) {
		t.Fatalf("nil-injector chaos touched counters: %+v", c.Snapshot())
	}
}

func TestChaosAppliesPlannedFaults(t *testing.T) {
	// Seed chosen arbitrarily; the test derives expectations from PlanAt,
	// so any seed works — including the CI matrix overrides.
	cfg := InjectorConfig{Seed: 4242, LatencyP: 0.5, LatencySpike: time.Microsecond, PanicP: 0.4, WriteFailP: 0.4}
	inj := NewInjector(cfg)
	var c Counters
	var handlerRuns, writeFailures int
	h := Recover(&c, Chaos(inj, &c, http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		handlerRuns++
		ChaosDelay(r.Context())
		if _, err := w.Write([]byte("ok")); err != nil {
			writeFailures++
		}
	})))

	const n = 50
	codes := make([]int, n)
	for i := 0; i < n; i++ {
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest(http.MethodGet, "/", nil))
		codes[i] = rec.Code
	}

	ref := NewInjector(cfg)
	var wantPanics, wantWF, wantLat, wantHandlerWF int
	for i := 0; i < n; i++ {
		p := ref.PlanAt(i)
		if p.Panic {
			wantPanics++
		}
		if p.FailWrite {
			wantWF++
		}
		if p.Latency > 0 {
			wantLat++
		}
		if p.FailWrite && !p.Panic {
			wantHandlerWF++
		}
		wantCode := http.StatusOK
		if p.Panic {
			wantCode = http.StatusInternalServerError
		}
		if codes[i] != wantCode {
			t.Fatalf("request %d: code = %d, want %d (plan %+v)", i, codes[i], wantCode, p)
		}
	}
	if c.PanicsRecovered.Load() != int64(wantPanics) || c.InjectedPanics.Load() != int64(wantPanics) {
		t.Fatalf("panics recovered=%d injected=%d, want %d", c.PanicsRecovered.Load(), c.InjectedPanics.Load(), wantPanics)
	}
	if c.InjectedWriteFailures.Load() != int64(wantWF) {
		t.Fatalf("InjectedWriteFailures = %d, want %d", c.InjectedWriteFailures.Load(), wantWF)
	}
	if c.InjectedLatencies.Load() != int64(wantLat) {
		t.Fatalf("InjectedLatencies = %d, want %d", c.InjectedLatencies.Load(), wantLat)
	}
	if handlerRuns != n-wantPanics {
		t.Fatalf("handler ran %d times, want %d (panicking requests never reach it)", handlerRuns, n-wantPanics)
	}
	if writeFailures != wantHandlerWF {
		t.Fatalf("handler saw %d write failures, want %d", writeFailures, wantHandlerWF)
	}
}
