package resilience

import (
	"sync"
	"time"
)

// QuotaConfig parameterizes per-tenant token buckets.
type QuotaConfig struct {
	// Burst is the bucket capacity in requests (tokens). Values <= 0
	// disable quotas (NewQuota returns nil).
	Burst int
	// RatePerSec refills the bucket continuously. Zero means no refill —
	// a pure burst budget, which is also the deterministic configuration
	// the quota tests pin exact counters against.
	RatePerSec float64
	// Now is the clock (nil = time.Now). Injectable so tests control
	// refill deterministically.
	Now func() time.Time
}

// Quota is a per-tenant token-bucket admission check, sitting in front of
// the concurrency gate: the gate bounds how much work runs at once, the
// quota bounds how much work each tenant may submit over time. A nil
// *Quota is a valid "quotas disabled" value.
type Quota struct {
	cfg QuotaConfig

	mu sync.Mutex
	//kw:guardedby(mu)
	buckets map[string]*bucket
}

type bucket struct {
	tokens float64
	last   time.Time
}

// NewQuota builds a quota, or returns nil when cfg.Burst <= 0.
func NewQuota(cfg QuotaConfig) *Quota {
	if cfg.Burst <= 0 {
		return nil
	}
	return &Quota{cfg: cfg, buckets: make(map[string]*bucket)}
}

func (q *Quota) now() time.Time {
	if q.cfg.Now != nil {
		return q.cfg.Now()
	}
	return time.Now()
}

// Allow spends one token from tenant's bucket. On refusal it returns the
// Retry-After hint: the time until one token refills, or one second when
// the bucket never refills (rate 0).
func (q *Quota) Allow(tenant string) (ok bool, retryAfter time.Duration) {
	if q == nil {
		return true, 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	now := q.now()
	b, found := q.buckets[tenant]
	if !found {
		b = &bucket{tokens: float64(q.cfg.Burst), last: now}
		q.buckets[tenant] = b
	} else if q.cfg.RatePerSec > 0 {
		if elapsed := now.Sub(b.last).Seconds(); elapsed > 0 {
			b.tokens += elapsed * q.cfg.RatePerSec
			if max := float64(q.cfg.Burst); b.tokens > max {
				b.tokens = max
			}
		}
	}
	b.last = now
	if b.tokens >= 1 {
		b.tokens--
		return true, 0
	}
	if q.cfg.RatePerSec <= 0 {
		return false, time.Second
	}
	deficit := 1 - b.tokens
	return false, time.Duration(deficit / q.cfg.RatePerSec * float64(time.Second))
}

// Tenants is the number of buckets currently tracked (a /statz gauge).
func (q *Quota) Tenants() int {
	if q == nil {
		return 0
	}
	q.mu.Lock()
	defer q.mu.Unlock()
	return len(q.buckets)
}
