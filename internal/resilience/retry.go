package resilience

import (
	"context"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"strconv"
	"sync/atomic"
	"time"

	"contextrank/internal/par"
)

// Doer is the slice of http.Client the retry wrapper needs.
type Doer interface {
	Do(*http.Request) (*http.Response, error)
}

// RetryClient retries transient failures — transport errors, 429 and 5xx
// responses — with capped exponential backoff and seeded jitter. The
// jitter stream is derived per request with par.Seed, so a probe run with
// a fixed seed replays the exact same backoff schedule.
//
// It is safe for concurrent use; each Do call owns an independent RNG.
type RetryClient struct {
	// Doer performs the individual attempts. Defaults to
	// http.DefaultClient when nil.
	Doer Doer
	// MaxAttempts bounds total tries (default 4).
	MaxAttempts int
	// BaseDelay is the first backoff step (default 50ms); each retry
	// doubles it, capped at MaxDelay (default 2s). A Retry-After header
	// overrides the computed delay, also capped at MaxDelay.
	BaseDelay, MaxDelay time.Duration
	// Sleep is replaceable for tests (default: a context-aware timer
	// wait). The request context is checked before and after the hook, so
	// even a test Sleep cannot extend a cancelled request.
	Sleep func(time.Duration)

	seed int64
	next atomic.Int64
}

// NewRetryClient wraps d with the default retry policy. The seed fixes
// the jitter schedule; inject it from a flag or config.
func NewRetryClient(d Doer, seed int64) *RetryClient {
	return &RetryClient{Doer: d, seed: seed}
}

func (c *RetryClient) doer() Doer {
	if c.Doer != nil {
		return c.Doer
	}
	return http.DefaultClient
}

func (c *RetryClient) maxAttempts() int {
	if c.MaxAttempts > 0 {
		return c.MaxAttempts
	}
	return 4
}

func (c *RetryClient) delays() (base, max time.Duration) {
	base, max = c.BaseDelay, c.MaxDelay
	if base <= 0 {
		base = 50 * time.Millisecond
	}
	if max <= 0 {
		max = 2 * time.Second
	}
	return base, max
}

// retryableStatus: overload shedding and server-side failures are worth a
// retry; everything else (4xx semantics, success) is final.
func retryableStatus(code int) bool {
	switch code {
	case http.StatusTooManyRequests, http.StatusInternalServerError,
		http.StatusBadGateway, http.StatusServiceUnavailable, http.StatusGatewayTimeout:
		return true
	}
	return false
}

// retryAfter parses a Retry-After header given in seconds (the only form
// the serve layer emits). Zero when absent or unparseable.
func retryAfter(resp *http.Response) time.Duration {
	secs, err := strconv.Atoi(resp.Header.Get("Retry-After"))
	if err != nil || secs < 0 {
		return 0
	}
	return time.Duration(secs) * time.Second
}

// Do performs the request with retries. A request with a body must be
// replayable (http.NewRequest sets GetBody for the common reader types).
// The response returned on success must be closed by the caller; failed
// attempts are drained and closed here so connections are reused.
func (c *RetryClient) Do(req *http.Request) (*http.Response, error) {
	base, max := c.delays()
	rng := rand.New(rand.NewSource(par.Seed(c.seed, int(c.next.Add(1)-1))))
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		if attempt > 0 && req.Body != nil {
			if req.GetBody == nil {
				return nil, fmt.Errorf("resilience: cannot retry request with non-replayable body: %w", lastErr)
			}
			body, err := req.GetBody()
			if err != nil {
				return nil, fmt.Errorf("resilience: replaying request body: %w", err)
			}
			req.Body = body
		}
		resp, err := c.doer().Do(req)
		var delay time.Duration
		switch {
		case err != nil:
			lastErr = err
		case !retryableStatus(resp.StatusCode):
			return resp, nil
		default:
			lastErr = fmt.Errorf("resilience: server returned %s", resp.Status)
			delay = retryAfter(resp)
			// Drain so the keep-alive connection is reusable.
			_, _ = io.Copy(io.Discard, io.LimitReader(resp.Body, 1<<16))
			_ = resp.Body.Close()
		}
		if attempt == c.maxAttempts()-1 {
			break
		}
		if delay == 0 {
			delay = c.backoff(rng, base, max, attempt)
		} else if delay > max {
			delay = max
		}
		if err := c.sleepCtx(req.Context(), delay); err != nil {
			return nil, err
		}
	}
	return nil, lastErr
}

// sleepCtx waits out one backoff delay without ever outliving the request
// context: an already-cancelled context returns immediately, cancellation
// mid-sleep wakes the wait, and the delay is clamped to the remaining
// deadline budget so the client never sleeps past the point where the
// next attempt could not run anyway. Returns the context error when the
// caller is gone, nil when the retry should proceed.
func (c *RetryClient) sleepCtx(ctx context.Context, d time.Duration) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	if dl, ok := ctx.Deadline(); ok {
		remain := time.Until(dl)
		if remain <= 0 {
			return context.DeadlineExceeded
		}
		if d > remain {
			d = remain
		}
	}
	if c.Sleep != nil {
		c.Sleep(d)
		return ctx.Err()
	}
	timer := time.NewTimer(d)
	defer timer.Stop()
	select {
	case <-timer.C:
		return ctx.Err()
	case <-ctx.Done():
		return ctx.Err()
	}
}

// DoRead is Do plus a full body read: a truncated or failed body read is
// treated as one more transient failure and retried. It returns the final
// response (body already closed) and the bytes read.
func (c *RetryClient) DoRead(req *http.Request) (*http.Response, []byte, error) {
	var lastErr error
	for attempt := 0; attempt < c.maxAttempts(); attempt++ {
		resp, err := c.Do(req)
		if err != nil {
			return nil, nil, err
		}
		body, err := io.ReadAll(resp.Body)
		_ = resp.Body.Close()
		if err == nil {
			return resp, body, nil
		}
		lastErr = fmt.Errorf("resilience: reading response body: %w", err)
	}
	return nil, nil, lastErr
}

// backoff computes min(max, base<<attempt) with jitter in [d/2, d]: full
// synchronization of retry storms is the failure mode jitter exists to
// break, and the seeded stream keeps the schedule reproducible.
func (c *RetryClient) backoff(rng *rand.Rand, base, max time.Duration, attempt int) time.Duration {
	d := base
	for i := 0; i < attempt && d < max; i++ {
		d *= 2
	}
	if d > max {
		d = max
	}
	half := int64(d / 2)
	return time.Duration(half + rng.Int63n(half+1))
}
