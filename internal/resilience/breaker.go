package resilience

import (
	"sync"

	"contextrank/internal/par"
)

// BreakerState is the circuit-breaker state machine position.
type BreakerState int32

const (
	// BreakerClosed: requests flow normally; consecutive failures are
	// counted toward the trip threshold.
	BreakerClosed BreakerState = iota
	// BreakerOpen: the shard is shed; a seeded number of routed requests
	// skip it before the breaker moves to half-open.
	BreakerOpen
	// BreakerHalfOpen: exactly one probe request is in flight; its outcome
	// closes the breaker or re-opens it with the next cooldown draw.
	BreakerHalfOpen
)

// String names the state for /statz.
func (s BreakerState) String() string {
	switch s {
	case BreakerClosed:
		return "closed"
	case BreakerOpen:
		return "open"
	case BreakerHalfOpen:
		return "half-open"
	}
	return "unknown"
}

// BreakerDecision is the per-request admission verdict of Allow.
type BreakerDecision int

const (
	// BreakerProceed: the breaker is closed; route the request.
	BreakerProceed BreakerDecision = iota
	// BreakerProbe: the breaker was half-open and this request claimed the
	// single probe slot; its outcome must be reported.
	BreakerProbe
	// BreakerSkip: the shard is shed; route to the next replica.
	BreakerSkip
)

// BreakerConfig parameterizes a per-shard circuit breaker. The cooldown
// schedule is derived from (Seed, Stream) with the same splitmix64 mix as
// the parallel pipeline, so a fixed seed fixes the entire probe schedule —
// the k-th open always sheds exactly BreakerCooldownAt(cfg, k) requests
// before half-opening, and tests re-derive expected skip counts by
// replaying that pure function.
type BreakerConfig struct {
	// Threshold is the number of consecutive failures that open the
	// breaker. Values <= 0 disable the breaker (NewBreaker returns nil).
	Threshold int
	// MinSkip / MaxSkip bound each cooldown, measured in routed requests
	// (not wall clock — request counts keep the schedule deterministic).
	// Defaults 4 and 8.
	MinSkip, MaxSkip int
	// Seed fixes the cooldown schedule; Stream is the per-shard stream
	// index (its position in the ring), so shards draw independent
	// schedules from one seed.
	Seed   int64
	Stream int
}

func (cfg BreakerConfig) skipBounds() (lo, hi int) {
	lo, hi = cfg.MinSkip, cfg.MaxSkip
	if lo <= 0 {
		lo = 4
	}
	if hi < lo {
		hi = lo + 4
	}
	return lo, hi
}

// BreakerCooldownAt is the pure probe-schedule function: how many routed
// requests the k-th open (0-based) sheds before the breaker half-opens.
// Tests replay it to predict exact breaker_skips counters.
func BreakerCooldownAt(cfg BreakerConfig, k int) int {
	lo, hi := cfg.skipBounds()
	span := uint64(hi - lo + 1)
	v := uint64(par.Seed(par.Seed(cfg.Seed, cfg.Stream), k))
	return lo + int(v%span)
}

// Breaker is a deterministic per-shard circuit breaker:
// closed → open → half-open, with request-count cooldowns drawn from a
// seeded splitmix64 stream. A nil *Breaker is a valid "disabled" value;
// callers treat it as always-Proceed.
type Breaker struct {
	cfg BreakerConfig

	mu sync.Mutex
	//kw:guardedby(mu)
	state BreakerState
	//kw:guardedby(mu)
	consecFails int
	//kw:guardedby(mu)
	remainingSkips int
	//kw:guardedby(mu)
	opens int64
}

// NewBreaker builds a breaker, or returns nil when cfg.Threshold <= 0
// (breaking disabled).
func NewBreaker(cfg BreakerConfig) *Breaker {
	if cfg.Threshold <= 0 {
		return nil
	}
	return &Breaker{cfg: cfg}
}

// Allow is consulted once per request the router is about to route to this
// shard. While open it decrements the cooldown and sheds; when the cooldown
// is spent it claims the single half-open probe slot.
func (b *Breaker) Allow() BreakerDecision {
	if b == nil {
		return BreakerProceed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	switch b.state {
	case BreakerClosed:
		return BreakerProceed
	case BreakerOpen:
		if b.remainingSkips > 0 {
			b.remainingSkips--
			return BreakerSkip
		}
		b.state = BreakerHalfOpen
		return BreakerProbe
	default: // BreakerHalfOpen: one probe is already in flight.
		return BreakerSkip
	}
}

// OnSuccess reports a completed request (or probe) that succeeded: the
// failure streak resets and a half-open breaker closes.
func (b *Breaker) OnSuccess() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	b.consecFails = 0
	b.state = BreakerClosed
}

// OnFailure reports a genuine failed attempt (transport error, shard 5xx,
// per-try deadline) — never a cancellation. A half-open probe failure
// re-opens with the next cooldown draw; a closed breaker opens once the
// streak reaches the threshold.
func (b *Breaker) OnFailure() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.open()
		return
	}
	b.consecFails++
	if b.state == BreakerClosed && b.consecFails >= b.cfg.Threshold {
		b.open()
	}
}

// OnCanceledProbe reverts a half-open probe whose attempt was cancelled
// before completing (e.g. the request's hedge won): the probe consumed no
// evidence, so the breaker re-opens with a spent cooldown — the next
// routed request probes again immediately instead of the state wedging in
// half-open forever.
func (b *Breaker) OnCanceledProbe() {
	if b == nil {
		return
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	if b.state == BreakerHalfOpen {
		b.state = BreakerOpen
		b.remainingSkips = 0
	}
}

// open transitions to BreakerOpen and draws the next cooldown. Callers
// hold b.mu.
//
//kw:holds(mu)
func (b *Breaker) open() {
	k := int(b.opens)
	b.opens++
	b.state = BreakerOpen
	b.remainingSkips = BreakerCooldownAt(b.cfg, k)
	b.consecFails = 0
}

// State reports the current position of the state machine.
func (b *Breaker) State() BreakerState {
	if b == nil {
		return BreakerClosed
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.state
}

// Opens is the number of times the breaker has tripped (also the index of
// the next cooldown draw).
func (b *Breaker) Opens() int64 {
	if b == nil {
		return 0
	}
	b.mu.Lock()
	defer b.mu.Unlock()
	return b.opens
}
