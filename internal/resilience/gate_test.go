package resilience

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"sync"
	"testing"
	"time"
)

func TestGateAdmitsUpToCapacity(t *testing.T) {
	g := NewGate(2, 0, 0)
	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g.InFlight() != 2 {
		t.Fatalf("InFlight = %d, want 2", g.InFlight())
	}
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("third acquire err = %v, want ErrShed", err)
	}
	r1()
	r3, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	r2()
	r3()
	if g.InFlight() != 0 {
		t.Fatalf("InFlight after releases = %d", g.InFlight())
	}
}

func TestGateQueueWaitsForSlot(t *testing.T) {
	g := NewGate(1, 1, time.Second)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r, err := g.Acquire(context.Background())
		if err == nil {
			r()
		}
		got <- err
	}()
	// Wait until the second request is parked in the queue, then free the
	// slot: the queued request must be admitted, not shed.
	for i := 0; i < 1000 && g.QueueDepth() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if g.QueueDepth() != 1 {
		t.Fatalf("QueueDepth = %d, want 1", g.QueueDepth())
	}
	release()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire err = %v", err)
	}
}

func TestGateQueueOverflowSheds(t *testing.T) {
	g := NewGate(1, 1, 50*time.Millisecond)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	var wg sync.WaitGroup
	queued := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := g.Acquire(context.Background())
		queued <- err
	}()
	for i := 0; i < 1000 && g.QueueDepth() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	// Queue holds one waiter; the next arrival must shed instantly.
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("overflow acquire err = %v, want ErrShed", err)
	}
	// The queued waiter sheds after maxWait since the slot never frees.
	if err := <-queued; !errors.Is(err, ErrShed) {
		t.Fatalf("queued acquire err = %v, want ErrShed after maxWait", err)
	}
	wg.Wait()
}

func TestGateHonorsContextWhileQueued(t *testing.T) {
	g := NewGate(1, 1, time.Minute)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := g.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestGateClampsDegenerateConfig(t *testing.T) {
	g := NewGate(0, -3, 0)
	if g.Capacity() != 1 {
		t.Fatalf("Capacity = %d, want clamp to 1", g.Capacity())
	}
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
}

// TestQueuedTimeoutAdmitRace is the satellite regression for the race
// between a queued request's wait timeout firing and a slot freeing at
// the same instant: every Acquire must resolve to exactly one outcome —
// admitted (and later released) XOR shed — and neither outcome may leak
// or double-free a slot. The slot-release timing is swept across the
// wait timeout to land attempts on both sides of the race, and the run
// is repeated at GOMAXPROCS 1 and 8 (the chaos suite runs it under
// -race).
func TestQueuedTimeoutAdmitRace(t *testing.T) {
	for _, procs := range []int{1, 8} {
		t.Run(fmt.Sprintf("procs=%d", procs), func(t *testing.T) {
			prev := runtime.GOMAXPROCS(procs)
			defer runtime.GOMAXPROCS(prev)

			const maxWait = time.Millisecond
			g := NewGate(1, 1, maxWait)
			const iters = 300
			admitted, shed := 0, 0
			for i := 0; i < iters; i++ {
				release, err := g.Acquire(context.Background())
				if err != nil {
					t.Fatalf("iteration %d: slot holder refused: %v", i, err)
				}
				outcome := make(chan error, 1)
				go func() {
					rel, err := g.Acquire(context.Background())
					if err == nil {
						rel()
					}
					outcome <- err
				}()
				// Sweep the release across [0, 1.5*maxWait] so some
				// iterations admit cleanly, some shed cleanly, and some
				// land right on the timeout edge.
				time.Sleep(time.Duration(i%4) * maxWait / 2)
				release()
				switch err := <-outcome; err {
				case nil:
					admitted++
				case ErrShed:
					shed++
				default:
					t.Fatalf("iteration %d: unexpected error %v", i, err)
				}
				// Balance invariant: whatever the outcome, the slot and the
				// queue must be fully drained — a double-count would either
				// leak the slot (this Acquire sheds) or free a phantom.
				if g.InFlight() != 0 || g.QueueDepth() != 0 {
					t.Fatalf("iteration %d: in_flight=%d queue=%d after drain", i, g.InFlight(), g.QueueDepth())
				}
				rel, err := g.Acquire(context.Background())
				if err != nil {
					t.Fatalf("iteration %d leaked the slot: %v", i, err)
				}
				rel()
			}
			if admitted+shed != iters {
				t.Fatalf("outcomes %d+%d != %d iterations", admitted, shed, iters)
			}
			t.Logf("procs=%d admitted=%d shed=%d", procs, admitted, shed)
		})
	}
}
