package resilience

import (
	"context"
	"errors"
	"sync"
	"testing"
	"time"
)

func TestGateAdmitsUpToCapacity(t *testing.T) {
	g := NewGate(2, 0, 0)
	r1, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	r2, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	if g.InFlight() != 2 {
		t.Fatalf("InFlight = %d, want 2", g.InFlight())
	}
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("third acquire err = %v, want ErrShed", err)
	}
	r1()
	r3, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatalf("acquire after release: %v", err)
	}
	r2()
	r3()
	if g.InFlight() != 0 {
		t.Fatalf("InFlight after releases = %d", g.InFlight())
	}
}

func TestGateQueueWaitsForSlot(t *testing.T) {
	g := NewGate(1, 1, time.Second)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	got := make(chan error, 1)
	go func() {
		r, err := g.Acquire(context.Background())
		if err == nil {
			r()
		}
		got <- err
	}()
	// Wait until the second request is parked in the queue, then free the
	// slot: the queued request must be admitted, not shed.
	for i := 0; i < 1000 && g.QueueDepth() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	if g.QueueDepth() != 1 {
		t.Fatalf("QueueDepth = %d, want 1", g.QueueDepth())
	}
	release()
	if err := <-got; err != nil {
		t.Fatalf("queued acquire err = %v", err)
	}
}

func TestGateQueueOverflowSheds(t *testing.T) {
	g := NewGate(1, 1, 50*time.Millisecond)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	var wg sync.WaitGroup
	queued := make(chan error, 1)
	wg.Add(1)
	go func() {
		defer wg.Done()
		_, err := g.Acquire(context.Background())
		queued <- err
	}()
	for i := 0; i < 1000 && g.QueueDepth() == 0; i++ {
		time.Sleep(time.Millisecond)
	}
	// Queue holds one waiter; the next arrival must shed instantly.
	if _, err := g.Acquire(context.Background()); !errors.Is(err, ErrShed) {
		t.Fatalf("overflow acquire err = %v, want ErrShed", err)
	}
	// The queued waiter sheds after maxWait since the slot never frees.
	if err := <-queued; !errors.Is(err, ErrShed) {
		t.Fatalf("queued acquire err = %v, want ErrShed after maxWait", err)
	}
	wg.Wait()
}

func TestGateHonorsContextWhileQueued(t *testing.T) {
	g := NewGate(1, 1, time.Minute)
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	defer release()
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	if _, err := g.Acquire(ctx); !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("err = %v, want DeadlineExceeded", err)
	}
}

func TestGateClampsDegenerateConfig(t *testing.T) {
	g := NewGate(0, -3, 0)
	if g.Capacity() != 1 {
		t.Fatalf("Capacity = %d, want clamp to 1", g.Capacity())
	}
	release, err := g.Acquire(context.Background())
	if err != nil {
		t.Fatal(err)
	}
	release()
}
