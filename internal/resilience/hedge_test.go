package resilience

import (
	"testing"
	"time"
)

// TestHedgeScheduleDeterministic: Next() walks exactly the DelayAt
// sequence, every delay lies in [base, base+jitter], the same seed
// replays the same schedule, and a different seed jitters differently.
func TestHedgeScheduleDeterministic(t *testing.T) {
	const base, jitter = 20 * time.Millisecond, 10 * time.Millisecond
	h := NewHedgeSchedule(base, jitter, 42)
	replay := NewHedgeSchedule(base, jitter, 42)
	other := NewHedgeSchedule(base, jitter, 43)
	identical := true
	for i := 0; i < 64; i++ {
		d := h.Next()
		if d != h.DelayAt(i) {
			t.Fatalf("Next()[%d] = %v, DelayAt = %v", i, d, h.DelayAt(i))
		}
		if d != replay.Next() {
			t.Fatalf("draw %d diverged between same-seed schedules", i)
		}
		if d < base || d > base+jitter {
			t.Fatalf("delay %d = %v outside [base, base+jitter]", i, d)
		}
		if d != other.DelayAt(i) {
			identical = false
		}
	}
	if identical {
		t.Fatal("seeds 42 and 43 drew identical 64-draw schedules")
	}
}

// TestHedgeScheduleDisabled: base <= 0 disables hedging; zero jitter
// makes the delay constant.
func TestHedgeScheduleDisabled(t *testing.T) {
	if NewHedgeSchedule(0, time.Millisecond, 1) != nil {
		t.Fatal("base 0 built a schedule")
	}
	h := NewHedgeSchedule(5*time.Millisecond, 0, 1)
	for i := 0; i < 8; i++ {
		if d := h.Next(); d != 5*time.Millisecond {
			t.Fatalf("jitterless delay %v", d)
		}
	}
}
