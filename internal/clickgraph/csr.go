// Frozen adjacency layout. Each side of the bipartite graph stores its
// rows in chunkCount independent byte streams (chunks), encoded in
// parallel and never concatenated, so freezing needs no bit-shifting merge
// and is bit-identical at any worker count. Per row the stream holds:
//
//	deg          Golomb(degM)           row length; empty rows stop here
//	bitmap flag  1 raw bit
//	— gap rows (flag 0) —
//	first nbr    Golomb(M_row)          the id itself, M_row derived from
//	                                    (universe, deg) — never stored
//	restart      absW raw bits          every skipSpan-th neighbor, absolute
//	gap−1        Golomb(M_row)          remaining neighbors
//	clicks−1     Golomb(wM)             after each neighbor, interleaved
//	— bitmap rows (flag 1) —
//	words        ⌈universe/64⌉ × 64 raw bits
//	clicks−1     Golomb(wM)             one per set bit, ascending
//
// Offsets are per GROUP of offGroup rows (offGroup = 8 on short-row sides,
// 1 on long-row sides): off[r/offGroup] is the chunk-relative bit offset
// of the group's first row, and rows are self-delimiting, so a reader
// skips at most offGroup−1 predecessor rows to open row r. This trades a
// bounded skip for shrinking the dominant table of the story side (one
// uint32 per 8 six-edge rows instead of one per row). Chunk assignment is
// group-aligned; the chunk index is row/rowsPerChunk.
//
// Rows with deg > skipSpan also carry skip-table entries (absolute
// neighbor + bit offset per restart) so a seek inside a long row decodes
// at most skipSpan−1 gaps. A row is stored as a bitmap exactly when
// words×64 < gap-stream bits + 64 bits per skip entry — the
// strictly-smaller rule of the searchsim postings bitmap.
package clickgraph

import (
	"math/bits"

	"contextrank/internal/golomb"
	"contextrank/internal/par"
)

// side is one direction of the frozen bipartite adjacency.
type side struct {
	n            int    // rows
	universe     uint32 // neighbor id space size
	rowsPerChunk int
	offGroup     int // rows per offset entry (power of two)
	chunks       [][]byte
	off          []uint32 // per group: chunk-relative bit offset of first row
	absW         uint     // raw width of restart neighbor ids
	degC         golomb.Codec
	wC           golomb.Codec
	bitmapRows   int

	// Skip tables, global per side, rows ascending. skipRows[i] is a row
	// with entries skipIdx[i]..skipIdx[i+1] in skipNbr/skipOff; entry k of
	// a row covers the restart at edge (k+1)·skipSpan. skipOff is
	// chunk-relative like off.
	skipRows []uint32
	skipIdx  []uint32
	skipNbr  []uint32
	skipOff  []uint32
}

// offGroupFor picks the offset granularity: short-row sides (story side,
// mean degree under shortRowMeanDeg) amortize one offset over 8 rows;
// long-row sides keep exact per-row offsets.
func offGroupFor(n, edges int) int {
	if n > 0 && float64(edges)/float64(n) < shortRowMeanDeg {
		return 8
	}
	return 1
}

const shortRowMeanDeg = 32

// rowM derives the per-row gap parameter from (universe, deg) — identical
// at encode and decode, so it is never stored.
func rowM(universe uint32, deg int) uint32 {
	return golomb.OptimalM(float64(universe) / float64(deg+1))
}

// absWidth is the raw bit width of an absolute neighbor id.
func absWidth(universe uint32) uint {
	if universe <= 1 {
		return 1
	}
	return uint(bits.Len32(universe - 1))
}

// encodeSide compresses one CSR direction. start/dst/wt is the
// deduplicated forward form (rows sorted, weights ≥ 1); totalClicks sizes
// the global weight parameter.
func encodeSide(universe uint32, start, dst, wt []uint32, totalClicks uint64, workers int) side {
	n := len(start) - 1
	s := side{
		n:        n,
		universe: universe,
		absW:     absWidth(universe),
		offGroup: offGroupFor(n, len(dst)),
	}
	edges := len(dst)
	meanDeg := 0.0
	if n > 0 {
		meanDeg = float64(edges) / float64(n)
	}
	s.degC = golomb.NewCodec(golomb.OptimalM(meanDeg))
	meanW := 0.0
	if edges > 0 {
		meanW = float64(totalClicks-uint64(edges)) / float64(edges)
	}
	s.wC = golomb.NewCodec(golomb.OptimalM(meanW))

	if n == 0 {
		s.rowsPerChunk = 1
		return s
	}
	nChunks := chunkCount
	if nChunks > n {
		nChunks = n
	}
	// Group-aligned chunks: every offset group lives in one chunk.
	rpc := (n + nChunks - 1) / nChunks
	rpc = (rpc + s.offGroup - 1) / s.offGroup * s.offGroup
	s.rowsPerChunk = rpc
	nChunks = (n + rpc - 1) / rpc
	s.chunks = make([][]byte, nChunks)
	s.off = make([]uint32, (n+s.offGroup-1)/s.offGroup)

	type chunkSkip struct {
		rows, idx, nbr, off []uint32
		bitmapRows          int
	}
	skips := make([]chunkSkip, nChunks)

	par.For(workers, nChunks, func(ci int) {
		lo := ci * rpc
		hi := lo + rpc
		if hi > n {
			hi = n
		}
		var bw golomb.BitWriter
		var words []uint64
		cs := &skips[ci]
		cs.idx = append(cs.idx, 0)
		for r := lo; r < hi; r++ {
			row := dst[start[r]:start[r+1]]
			rw := wt[start[r]:start[r+1]]
			deg := len(row)
			if r%s.offGroup == 0 {
				s.off[r/s.offGroup] = uint32(bw.BitLen())
			}
			s.degC.Write(&bw, uint32(deg))
			if deg == 0 {
				continue
			}
			gapC := golomb.NewCodec(rowM(universe, deg))
			// Exact stream cost vs bitmap cost; the flag bit and the
			// weights are identical in both representations and drop out.
			gapBits := 0
			prev := uint32(0)
			for j, v := range row {
				switch {
				case j == 0:
					gapBits += gapC.Cost(v)
				case j%skipSpan == 0:
					gapBits += int(s.absW)
				default:
					gapBits += gapC.Cost(v - prev - 1)
				}
				prev = v
			}
			nSkip := (deg - 1) / skipSpan
			nWords := (int(universe) + 63) / 64
			if nWords*64 < gapBits+64*nSkip {
				// Bitmap row: flag 1, raw words, then weights.
				bw.WriteBit(1)
				cs.bitmapRows++
				if len(words) < nWords {
					words = make([]uint64, nWords)
				}
				w := words[:nWords]
				for i := range w {
					w[i] = 0
				}
				for _, v := range row {
					w[v>>6] |= 1 << (v & 63)
				}
				for _, word := range w {
					bw.WriteBits(word, 64)
				}
				for _, c := range rw {
					s.wC.Write(&bw, c-1)
				}
				continue
			}
			bw.WriteBit(0)
			if nSkip > 0 {
				cs.rows = append(cs.rows, uint32(r))
			}
			prev = 0
			for j, v := range row {
				switch {
				case j == 0:
					gapC.Write(&bw, v)
				case j%skipSpan == 0:
					cs.nbr = append(cs.nbr, v)
					cs.off = append(cs.off, uint32(bw.BitLen()))
					bw.WriteBits(uint64(v), s.absW)
				default:
					gapC.Write(&bw, v-prev-1)
				}
				prev = v
				s.wC.Write(&bw, rw[j]-1)
			}
			if nSkip > 0 {
				cs.idx = append(cs.idx, uint32(len(cs.nbr)))
			}
		}
		s.chunks[ci] = bw.Bytes()
	})

	// Serial merge of per-chunk skip tables in chunk (= row) order.
	s.skipIdx = append(s.skipIdx, 0)
	for ci := range skips {
		cs := &skips[ci]
		s.bitmapRows += cs.bitmapRows
		base := uint32(len(s.skipNbr))
		s.skipRows = append(s.skipRows, cs.rows...)
		s.skipNbr = append(s.skipNbr, cs.nbr...)
		s.skipOff = append(s.skipOff, cs.off...)
		for _, end := range cs.idx[1:] {
			s.skipIdx = append(s.skipIdx, base+end)
		}
	}
	return s
}

// frozenBytes is the side's total footprint: streams plus tables.
func (s *side) frozenBytes() int {
	b := 0
	for _, c := range s.chunks {
		b += len(c)
	}
	b += 4 * (len(s.off) + len(s.skipRows) + len(s.skipIdx) + len(s.skipNbr) + len(s.skipOff))
	return b
}

// openRow positions a reader at row r's deg field by jumping to the row's
// offset group and skip-decoding at most offGroup−1 self-delimiting
// predecessor rows.
//
//kw:hotpath
func (s *side) openRow(r uint32) (golomb.BitReader, []byte) {
	data := s.chunks[int(r)/s.rowsPerChunk]
	group := int(r) / s.offGroup
	br := golomb.BitReaderAt(data, int(s.off[group]))
	s.skipRowsFrom(&br, data, group*s.offGroup, int(r))
	return br, data
}

// skipRowsFrom advances br over rows [from, to) of data, decoding only as
// much as self-delimitation requires.
//
//kw:hotpath
func (s *side) skipRowsFrom(br *golomb.BitReader, data []byte, from, to int) {
	for row := from; row < to; row++ {
		deg, err := s.degC.Read(br)
		if err != nil {
			panic("clickgraph: corrupt row header")
		}
		if deg == 0 {
			continue
		}
		flag, err := br.ReadBit()
		if err != nil {
			panic("clickgraph: corrupt row flag")
		}
		if flag == 1 {
			// Bitmap: jump the fixed word block, decode the weights.
			nWords := (int(s.universe) + 63) / 64
			*br = golomb.BitReaderAt(data, br.BitPos()+nWords*64)
			for k := uint32(0); k < deg; k++ {
				if _, err := s.wC.Read(br); err != nil {
					panic("clickgraph: corrupt weight stream")
				}
			}
			continue
		}
		gapC := golomb.NewCodec(rowM(s.universe, int(deg)))
		for j := uint32(0); j < deg; j++ {
			if j != 0 && int(j)%skipSpan == 0 {
				if _, err := br.ReadBits(s.absW); err != nil {
					panic("clickgraph: corrupt restart")
				}
			} else if _, err := gapC.Read(br); err != nil {
				panic("clickgraph: corrupt gap stream")
			}
			if _, err := s.wC.Read(br); err != nil {
				panic("clickgraph: corrupt weight stream")
			}
		}
	}
}

// rowIter streams one row's (neighbor, clicks) pairs in ascending neighbor
// order. The zero value is reusable across rows via iterInto; it holds no
// heap state of its own, so embedding it in pooled scratch is free.
type rowIter struct {
	br   golomb.BitReader // gap/weight stream (or bitmap weights)
	gapC golomb.Codec
	wC   golomb.Codec
	absW uint
	deg  int
	i    int
	prev uint32

	bitmap  bool
	bmr     golomb.BitReader // bitmap word stream
	word    uint64
	wordIdx int
	nWords  int
}

// iterInto positions it at the start of row r.
//
//kw:hotpath
func (s *side) iterInto(r uint32, it *rowIter) {
	br, data := s.openRow(r)
	s.startRow(br, data, it)
}

// rowCursor remembers where the previous row's stream ended so an
// ascending scan (the propagation sweep) decodes each row at most once
// instead of re-skipping its offset-group predecessors. The cached
// position is only correct when every opened row is consumed to
// exhaustion before the next cursorInto; the sweep always does.
type rowCursor struct {
	it    rowIter
	chunk int
	next  int64 // row the stream is positioned at; -1 means unknown
}

// cursorInto positions c.it at row r, resuming from the previous row's end
// whenever that skips no more rows than a fresh group jump would.
//
//kw:hotpath
func (s *side) cursorInto(r uint32, c *rowCursor) {
	chunk := int(r) / s.rowsPerChunk
	if c.next >= 0 && c.chunk == chunk && c.next <= int64(r) &&
		int64(r)-c.next <= int64(int(r)%s.offGroup) {
		data := s.chunks[chunk]
		br := golomb.BitReaderAt(data, c.it.br.BitPos())
		s.skipRowsFrom(&br, data, int(c.next), int(r))
		s.startRow(br, data, &c.it)
	} else {
		br, data := s.openRow(r)
		s.startRow(br, data, &c.it)
	}
	c.chunk = chunk
	c.next = int64(r) + 1
}

// startRow reads row r's header at br and initializes the iterator. br
// must sit exactly at the deg field; on return it.br ends the row when
// fully consumed (the cursor invariant).
//
//kw:hotpath
func (s *side) startRow(br golomb.BitReader, data []byte, it *rowIter) {
	deg, err := s.degC.Read(&br)
	if err != nil {
		panic("clickgraph: corrupt row header")
	}
	it.wC = s.wC
	it.deg = int(deg)
	it.i = 0
	it.prev = 0
	it.bitmap = false
	if deg == 0 {
		it.br = br
		return
	}
	flag, err := br.ReadBit()
	if err != nil {
		panic("clickgraph: corrupt row flag")
	}
	it.bitmap = flag == 1
	if it.bitmap {
		it.nWords = (int(s.universe) + 63) / 64
		it.wordIdx = 0
		it.word = 0
		it.bmr = br
		// Weights start right after the fixed-size word block.
		it.br = golomb.BitReaderAt(data, br.BitPos()+it.nWords*64)
	} else {
		it.absW = s.absW
		it.gapC = golomb.NewCodec(rowM(s.universe, int(deg)))
		it.br = br
	}
}

// next returns the row's next (neighbor, clicks) pair.
//
//kw:hotpath
func (it *rowIter) next() (nbr, clicks uint32, ok bool) {
	if it.i >= it.deg {
		return 0, 0, false
	}
	j := it.i
	it.i++
	if it.bitmap {
		for it.word == 0 {
			if it.wordIdx >= it.nWords {
				panic("clickgraph: bitmap row short of set bits")
			}
			w, err := it.bmr.ReadBits(64)
			if err != nil {
				panic("clickgraph: corrupt bitmap row")
			}
			it.word = w
			it.wordIdx++
		}
		tz := bits.TrailingZeros64(it.word)
		it.word &= it.word - 1
		nbr = uint32((it.wordIdx-1)*64 + tz)
	} else {
		switch {
		case j == 0:
			v, err := it.gapC.Read(&it.br)
			if err != nil {
				panic("clickgraph: corrupt gap stream")
			}
			nbr = v
		case j%skipSpan == 0:
			v, err := it.br.ReadBits(it.absW)
			if err != nil {
				panic("clickgraph: corrupt restart")
			}
			nbr = uint32(v)
		default:
			gap, err := it.gapC.Read(&it.br)
			if err != nil {
				panic("clickgraph: corrupt gap stream")
			}
			nbr = it.prev + gap + 1
		}
		it.prev = nbr
	}
	w, err := it.wC.Read(&it.br)
	if err != nil {
		panic("clickgraph: corrupt weight stream")
	}
	return nbr, w + 1, true
}

// isBitmap reports whether row r froze as a bitmap (test hook).
func (s *side) isBitmap(r uint32) bool {
	br, _ := s.openRow(r)
	deg, err := s.degC.Read(&br)
	if err != nil || deg == 0 {
		return false
	}
	flag, err := br.ReadBit()
	return err == nil && flag == 1
}

// seek returns the weight of edge (r, target) if present. Bitmap rows
// answer membership from the word block directly; gap rows binary-search
// the skip table and decode at most skipSpan−1 gaps past the restart.
func (s *side) seek(r, target uint32) (uint32, bool) {
	if int(r) >= s.n || target >= s.universe {
		return 0, false
	}
	br, data := s.openRow(r)
	deg32, err := s.degC.Read(&br)
	if err != nil {
		panic("clickgraph: corrupt row header")
	}
	deg := int(deg32)
	if deg == 0 {
		return 0, false
	}
	flag, err := br.ReadBit()
	if err != nil {
		panic("clickgraph: corrupt row flag")
	}
	if flag == 1 {
		nWords := (int(s.universe) + 63) / 64
		wordsStart := br.BitPos()
		// Membership test on the target word.
		wr := golomb.BitReaderAt(data, wordsStart+int(target>>6)*64)
		word, err := wr.ReadBits(64)
		if err != nil {
			panic("clickgraph: corrupt bitmap row")
		}
		if word&(1<<(target&63)) == 0 {
			return 0, false
		}
		// Rank: count set bits before target to skip that many weights.
		rank := bits.OnesCount64(word & (1<<(target&63) - 1))
		wr = golomb.BitReaderAt(data, wordsStart)
		for wi := 0; wi < int(target>>6); wi++ {
			w, err := wr.ReadBits(64)
			if err != nil {
				panic("clickgraph: corrupt bitmap row")
			}
			rank += bits.OnesCount64(w)
		}
		wbr := golomb.BitReaderAt(data, wordsStart+nWords*64)
		for k := 0; k < rank; k++ {
			if _, err := s.wC.Read(&wbr); err != nil {
				panic("clickgraph: corrupt weight stream")
			}
		}
		w, err := s.wC.Read(&wbr)
		if err != nil {
			panic("clickgraph: corrupt weight stream")
		}
		return w + 1, true
	}

	// Find the latest restart with neighbor ≤ target.
	startEdge := 0
	if deg > skipSpan {
		if si, ok := findRow(s.skipRows, r); ok {
			a, b := s.skipIdx[si], s.skipIdx[si+1]
			// First entry with nbr > target; start from its predecessor.
			lo, hi := int(a), int(b)
			for lo < hi {
				mid := (lo + hi) / 2
				if s.skipNbr[mid] <= target {
					lo = mid + 1
				} else {
					hi = mid
				}
			}
			if lo > int(a) {
				entry := lo - 1
				startEdge = (entry - int(a) + 1) * skipSpan
				br = golomb.BitReaderAt(data, int(s.skipOff[entry]))
			}
		}
	}
	gapC := golomb.NewCodec(rowM(s.universe, deg))
	prev := uint32(0)
	end := startEdge + skipSpan
	if end > deg {
		end = deg
	}
	for j := startEdge; j < end; j++ {
		var nbr uint32
		switch {
		case j == 0:
			v, err := gapC.Read(&br)
			if err != nil {
				panic("clickgraph: corrupt gap stream")
			}
			nbr = v
		case j%skipSpan == 0:
			v, err := br.ReadBits(s.absW)
			if err != nil {
				panic("clickgraph: corrupt restart")
			}
			nbr = uint32(v)
		default:
			gap, err := gapC.Read(&br)
			if err != nil {
				panic("clickgraph: corrupt gap stream")
			}
			nbr = prev + gap + 1
		}
		prev = nbr
		w, err := s.wC.Read(&br)
		if err != nil {
			panic("clickgraph: corrupt weight stream")
		}
		if nbr == target {
			return w + 1, true
		}
		if nbr > target {
			return 0, false
		}
	}
	return 0, false
}

// findRow binary-searches the ascending skipRows for r.
func findRow(rows []uint32, r uint32) (int, bool) {
	lo, hi := 0, len(rows)
	for lo < hi {
		mid := (lo + hi) / 2
		if rows[mid] < r {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(rows) && rows[lo] == r {
		return lo, true
	}
	return 0, false
}
