// Query-Chains-style pairwise preference extraction (PAPERS.md:
// Radlinski & Joachims, "Query chains: learning to rank from implicit
// feedback"). Within one report all entities share the story's views and
// render in position order, so a later-positioned entity out-clicking an
// earlier one expressed a preference that survives position bias: the
// winner overcame a worse slot. Each such pair becomes one ranksvm
// training group; the aggregated per-concept click totals feed the
// internal/online tracker.
package clickgraph

import (
	"sort"

	"contextrank/internal/clicksim"
	"contextrank/internal/online"
	"contextrank/internal/ranksvm"
)

// Preference is one extracted pairwise judgment: Winner should rank above
// Loser for the story's context.
type Preference struct {
	// StoryID is the report's story.
	StoryID int
	// Winner out-clicked Loser from a later (worse) position.
	Winner, Loser string
	// WinnerClicks and LoserClicks are the raw counts behind the pair.
	WinnerClicks, LoserClicks int
	// Margin is the CTR gap (winner − loser), in [0, 1].
	Margin float64
}

// MinWinnerClicks is the noise floor: a winner needs at least this many
// clicks before a pair is emitted (one click is not a judgment).
const MinWinnerClicks = 2

// ExtractPreferences walks the reports in order and emits click-skip
// preference pairs: entity i beats entity j when i sits at a strictly
// later position yet collected strictly more clicks, with at least
// MinWinnerClicks. The output order is deterministic (report order, then
// winner position, then loser position).
func ExtractPreferences(reports []clicksim.Report) []Preference {
	var prefs []Preference
	for ri := range reports {
		r := &reports[ri]
		if r.Views == 0 {
			continue
		}
		for i := range r.Entities {
			w := &r.Entities[i]
			if w.Clicks < MinWinnerClicks {
				continue
			}
			for j := range r.Entities {
				l := &r.Entities[j]
				if l.Position >= w.Position || l.Clicks >= w.Clicks {
					continue
				}
				prefs = append(prefs, Preference{
					StoryID:      r.Story.ID,
					Winner:       w.Concept.Name,
					Loser:        l.Concept.Name,
					WinnerClicks: w.Clicks,
					LoserClicks:  l.Clicks,
					Margin:       float64(w.Clicks-l.Clicks) / float64(r.Views),
				})
			}
		}
	}
	return prefs
}

// Instances converts preferences into ranksvm training instances: one
// group per preference, winner labeled 1 and loser 0, so the trainer forms
// exactly the extracted pairs. feat maps a concept name (in its story
// context) to a feature vector.
func Instances(prefs []Preference, feat func(storyID int, concept string) []float64) []ranksvm.Instance {
	out := make([]ranksvm.Instance, 0, 2*len(prefs))
	for gi, p := range prefs {
		out = append(out,
			ranksvm.Instance{Features: feat(p.StoryID, p.Winner), Label: 1, Group: gi},
			ranksvm.Instance{Features: feat(p.StoryID, p.Loser), Label: 0, Group: gi},
		)
	}
	return out
}

// Events aggregates reports into per-concept online.Event totals (views
// sum over every report mentioning the concept, clicks over its sampled
// clicks), sorted by concept name so one Tracker.Tick per reporting window
// is deterministic.
func Events(reports []clicksim.Report) []online.Event {
	agg := make(map[string]*online.Event)
	for ri := range reports {
		r := &reports[ri]
		for i := range r.Entities {
			e := &r.Entities[i]
			ev := agg[e.Concept.Name]
			if ev == nil {
				ev = &online.Event{Concept: e.Concept.Name}
				agg[e.Concept.Name] = ev
			}
			ev.Views += r.Views
			ev.Clicks += e.Clicks
		}
	}
	out := make([]online.Event, 0, len(agg))
	for _, ev := range agg {
		out = append(out, *ev)
	}
	sort.Slice(out, func(i, j int) bool { return out[i].Concept < out[j].Concept })
	return out
}
