// Package clickgraph materializes the bipartite concept ↔ story click
// graph from clicksim reports and freezes it into a compressed CSR
// representation sized for ORCAS-scale click logs (PAPERS.md: 18M clicked
// query–document pairs). Each side of the bipartite graph is a frozen
// adjacency: interned uint32 node ids (concept names through match.Vocab,
// story ids through a dense remap), neighbor-gap streams Golomb-coded via
// internal/golomb with fixed-width restarts every skipSpan edges, whole-row
// bitmap blocks when strictly smaller (the searchsim postings heuristic),
// and per-node bit-offset tables so propagation never decodes more than
// the row it touches.
//
// On top of the frozen graph sit Simrank++-style evidence-weighted
// affinity propagation (propagate.go — deterministic at any worker count),
// Related/Rewrite query expansion (query.go), and Query-Chains-style
// pairwise preference extraction feeding ranksvm and internal/online
// (prefs.go).
package clickgraph

import (
	"math"
	"sync"

	"contextrank/internal/clicksim"
	"contextrank/internal/match"
	"contextrank/internal/par"
)

const (
	// skipSpan is the restart interval of the Golomb gap streams: every
	// skipSpan-th neighbor is stored as a fixed-width absolute id, and
	// rows longer than skipSpan carry a skip table entry per restart, so
	// a seek decodes at most skipSpan−1 gaps.
	skipSpan = 128
	// chunkCount is the fixed number of encode chunks per side. Rows are
	// assigned to chunks by contiguous ranges and chunks are encoded in
	// parallel; the count is worker-independent so the frozen bytes are
	// bit-identical at any worker count.
	chunkCount = 64
	// rawEdgeBytes is the cost of one edge in the uncompressed edge list
	// the frozen layout is measured against: (src, dst, clicks) uint32.
	rawEdgeBytes = 12
)

// Stats summarizes a frozen graph.
type Stats struct {
	// Concepts and Stories count the nodes on each side.
	Concepts, Stories int
	// Edges counts distinct (concept, story) pairs with at least one click.
	Edges int
	// TotalClicks sums click weights over all edges.
	TotalClicks uint64
	// RawBytes is the uncompressed edge-list size: rawEdgeBytes per edge.
	RawBytes int
	// FrozenBytes is the total size of both frozen adjacency sides:
	// compressed streams plus offset and skip tables.
	FrozenBytes int
	// BitmapRows counts rows stored as bitmaps instead of gap streams.
	BitmapRows int
	// SkipEntries counts skip-table restart entries across both sides.
	SkipEntries int
}

// Graph is the bipartite click graph. The build phase (AddReport,
// AddClicks, the interning helpers) accumulates a raw edge list; Freeze
// deduplicates it, compresses both adjacency sides, and precomputes the
// evidence norms. After Freeze the graph is immutable and safe for
// concurrent readers.
//
//kw:frozen-after(Freeze)
type Graph struct {
	vocab    *match.Vocab
	storyIdx map[int]uint32 // external story id -> dense node id
	storyOf  []int          // dense node id -> external story id

	// Raw edge staging, released by Freeze.
	srcs, dsts, wts []uint32

	frozen bool
	fwd    side // concept -> stories
	rev    side // story -> concepts
	stats  Stats

	// normF[c] / normR[s] are the evidence normalizers Σ ev(clicks) over
	// the node's row — the denominators of the Simrank++ transition
	// weights. Computed once during Freeze.
	normF, normR []float64

	queryScratch sync.Pool
}

// New returns an empty graph.
func New() *Graph {
	return &Graph{
		vocab:    match.NewVocab(),
		storyIdx: make(map[int]uint32),
	}
}

// InternConcept returns the dense node id for a concept name, assigning
// the next id if new.
//
//kw:builder
func (g *Graph) InternConcept(name string) uint32 {
	return g.vocab.Intern(name)
}

// InternStory returns the dense node id for an external story id,
// assigning the next id if new.
//
//kw:builder
func (g *Graph) InternStory(storyID int) uint32 {
	if id, ok := g.storyIdx[storyID]; ok {
		return id
	}
	id := uint32(len(g.storyOf))
	g.storyIdx[storyID] = id
	g.storyOf = append(g.storyOf, storyID)
	return id
}

// AddClicksID records clicks on (concept node, story node). Edges with
// zero clicks are dropped; duplicate pairs are merged by Freeze (click
// counts sum).
//
//kw:builder
func (g *Graph) AddClicksID(concept, story, clicks uint32) {
	if clicks == 0 {
		return
	}
	g.srcs = append(g.srcs, concept)
	g.dsts = append(g.dsts, story)
	g.wts = append(g.wts, clicks)
}

// AddClicks records clicks on (concept name, external story id), interning
// both. Zero-click calls still register the nodes, so a story or concept
// can exist with an empty adjacency row.
//
//kw:builder
func (g *Graph) AddClicks(concept string, storyID, clicks int) {
	c := g.InternConcept(concept)
	s := g.InternStory(storyID)
	if clicks > 0 {
		g.AddClicksID(c, s, uint32(clicks))
	}
}

// AddReport folds one clicksim report into the graph: every entity with at
// least one click becomes an edge weighted by its click count.
//
//kw:builder
func (g *Graph) AddReport(r *clicksim.Report) {
	s := g.InternStory(r.Story.ID)
	for i := range r.Entities {
		e := &r.Entities[i]
		if e.Clicks <= 0 {
			continue
		}
		g.AddClicksID(g.vocab.Intern(e.Concept.Name), s, uint32(e.Clicks))
	}
}

// FromReports builds and freezes a graph from cleaned clicksim reports.
func FromReports(reports []clicksim.Report, workers int) *Graph {
	g := New()
	for i := range reports {
		g.AddReport(&reports[i])
	}
	g.FreezeWorkers(workers)
	return g
}

// Freeze compresses the graph serially. See FreezeWorkers.
func (g *Graph) Freeze() { g.FreezeWorkers(1) }

// FreezeWorkers deduplicates the staged edge list, builds both CSR sides,
// Golomb-compresses them chunk-parallel, and precomputes the evidence
// norms. workers follows par.Workers semantics (0 = all cores); the frozen
// bytes are bit-identical at any worker count. Freezing an already-frozen
// or empty graph is allowed; adding edges after Freeze panics.
//
//kw:builder
func (g *Graph) FreezeWorkers(workers int) {
	if g.frozen {
		panic("clickgraph: FreezeWorkers called twice")
	}
	nC := g.vocab.Len()
	nS := len(g.storyOf)

	// Deduplicate into a forward CSR (concept -> sorted story rows).
	start, dst, wt := dedupCSR(nC, g.srcs, g.dsts, g.wts, workers)
	g.srcs, g.dsts, g.wts = nil, nil, nil

	edges := len(dst)
	var total uint64
	for _, w := range wt {
		total += uint64(w)
	}

	// Reverse CSR: scatter forward rows in ascending concept order, so
	// every story row comes out sorted by concept id with no duplicates
	// (the forward side is already deduplicated).
	rStart, rDst, rWt := transposeCSR(nC, nS, start, dst, wt)

	g.fwd = encodeSide(uint32(nS), start, dst, wt, total, workers)
	g.rev = encodeSide(uint32(nC), rStart, rDst, rWt, total, workers)

	g.normF = evidenceNorms(start, wt, workers)
	g.normR = evidenceNorms(rStart, rWt, workers)

	g.stats = Stats{
		Concepts:    nC,
		Stories:     nS,
		Edges:       edges,
		TotalClicks: total,
		RawBytes:    rawEdgeBytes * edges,
		FrozenBytes: g.fwd.frozenBytes() + g.rev.frozenBytes(),
		BitmapRows:  g.fwd.bitmapRows + g.rev.bitmapRows,
		SkipEntries: len(g.fwd.skipNbr) + len(g.rev.skipNbr),
	}
	g.frozen = true
}

// dedupCSR counting-sorts the edge list by src, sorts each row by dst and
// merges duplicate (src, dst) pairs by summing weights. The scatter order
// is the deterministic input order and duplicate weights sum in integers,
// so the result is independent of worker count.
func dedupCSR(n int, srcs, dsts, wts []uint32, workers int) (start, dst, wt []uint32) {
	deg := make([]uint32, n+1)
	for _, s := range srcs {
		deg[s+1]++
	}
	for i := 0; i < n; i++ {
		deg[i+1] += deg[i]
	}
	scatterD := make([]uint32, len(dsts))
	scatterW := make([]uint32, len(dsts))
	next := make([]uint32, n)
	copy(next, deg[:n])
	for i, s := range srcs {
		p := next[s]
		next[s] = p + 1
		scatterD[p] = dsts[i]
		scatterW[p] = wts[i]
	}
	// Sort and merge each row in place; newDeg[r] is the deduped length.
	newDeg := make([]uint32, n+1)
	par.For(workers, n, func(r int) {
		lo, hi := deg[r], deg[r+1]
		row, rw := scatterD[lo:hi], scatterW[lo:hi]
		sortPairs(row, rw)
		w := 0
		for i := 0; i < len(row); i++ {
			if w > 0 && row[w-1] == row[i] {
				rw[w-1] += rw[i]
				continue
			}
			row[w], rw[w] = row[i], rw[i]
			w++
		}
		newDeg[r+1] = uint32(w)
	})
	for i := 0; i < n; i++ {
		newDeg[i+1] += newDeg[i]
	}
	dst = make([]uint32, newDeg[n])
	wt = make([]uint32, newDeg[n])
	par.For(workers, n, func(r int) {
		lo := newDeg[r]
		span := newDeg[r+1] - lo
		copy(dst[lo:lo+span], scatterD[deg[r]:deg[r]+span])
		copy(wt[lo:lo+span], scatterW[deg[r]:deg[r]+span])
	})
	return newDeg, dst, wt
}

// sortPairs sorts parallel arrays by key ascending (insertion sort below a
// threshold, median-of-three quicksort above). Equal-key order is
// irrelevant: duplicates merge by integer summation.
func sortPairs(keys, vals []uint32) {
	for len(keys) > 24 {
		p := medianOfThree(keys)
		lo, hi := 0, len(keys)-1
		for lo <= hi {
			for keys[lo] < p {
				lo++
			}
			for keys[hi] > p {
				hi--
			}
			if lo <= hi {
				keys[lo], keys[hi] = keys[hi], keys[lo]
				vals[lo], vals[hi] = vals[hi], vals[lo]
				lo++
				hi--
			}
		}
		// Recurse into the smaller half, loop on the larger.
		if hi+1 < len(keys)-lo {
			sortPairs(keys[:hi+1], vals[:hi+1])
			keys, vals = keys[lo:], vals[lo:]
		} else {
			sortPairs(keys[lo:], vals[lo:])
			keys, vals = keys[:hi+1], vals[:hi+1]
		}
	}
	for i := 1; i < len(keys); i++ {
		k, v := keys[i], vals[i]
		j := i - 1
		for j >= 0 && keys[j] > k {
			keys[j+1], vals[j+1] = keys[j], vals[j]
			j--
		}
		keys[j+1], vals[j+1] = k, v
	}
}

func medianOfThree(keys []uint32) uint32 {
	a, b, c := keys[0], keys[len(keys)/2], keys[len(keys)-1]
	if a > b {
		a, b = b, a
	}
	if b > c {
		b = c
	}
	if a > b {
		b = a
	}
	return b
}

// transposeCSR builds the reverse CSR from a deduplicated forward CSR.
// Scattering rows in ascending src order leaves every reverse row sorted.
func transposeCSR(nSrc, nDst int, start, dst, wt []uint32) (rStart, rDst, rWt []uint32) {
	rStart = make([]uint32, nDst+1)
	for _, d := range dst {
		rStart[d+1]++
	}
	for i := 0; i < nDst; i++ {
		rStart[i+1] += rStart[i]
	}
	rDst = make([]uint32, len(dst))
	rWt = make([]uint32, len(dst))
	next := make([]uint32, nDst)
	copy(next, rStart[:nDst])
	for s := 0; s < nSrc; s++ {
		for i := start[s]; i < start[s+1]; i++ {
			d := dst[i]
			p := next[d]
			next[d] = p + 1
			rDst[p] = uint32(s)
			rWt[p] = wt[i]
		}
	}
	return rStart, rDst, rWt
}

// evidence is the Simrank++ evidence weight of an edge with n clicks:
// ev(n) = 1 − 2^(−n), so repeated clicks asymptotically approach full
// confidence while a single click counts half.
func evidence(clicks uint32) float64 {
	if clicks >= 63 {
		return 1
	}
	return evTable[clicks]
}

var evTable = func() [63]float64 {
	var t [63]float64
	for i := 1; i < len(t); i++ {
		t[i] = 1 - math.Pow(2, -float64(i))
	}
	return t
}()

// evidenceNorms computes Σ ev(w) per row. Each row sums serially in edge
// order, so the result is worker-independent.
func evidenceNorms(start, wt []uint32, workers int) []float64 {
	n := len(start) - 1
	norms := make([]float64, n)
	par.For(workers, n, func(r int) {
		var sum float64
		for i := start[r]; i < start[r+1]; i++ {
			sum += evidence(wt[i])
		}
		norms[r] = sum
	})
	return norms
}

// Frozen reports whether Freeze has run.
func (g *Graph) Frozen() bool { return g.frozen }

// Stats returns the frozen graph's summary. Zero before Freeze.
func (g *Graph) Stats() Stats { return g.stats }

// NumConcepts returns the concept-side node count.
func (g *Graph) NumConcepts() int { return g.vocab.Len() }

// NumStories returns the story-side node count.
func (g *Graph) NumStories() int { return len(g.storyOf) }

// ConceptID returns the node id of a concept name.
func (g *Graph) ConceptID(name string) (uint32, bool) {
	id := g.vocab.ID(name)
	return id, id != match.NoID
}

// ConceptName returns the name of a concept node.
func (g *Graph) ConceptName(id uint32) string { return g.vocab.Token(id) }

// StoryNode returns the node id of an external story id.
func (g *Graph) StoryNode(storyID int) (uint32, bool) {
	id, ok := g.storyIdx[storyID]
	return id, ok
}

// StoryID returns the external story id of a story node.
func (g *Graph) StoryID(node uint32) int { return g.storyOf[node] }

func (g *Graph) mustFrozen() {
	if !g.frozen {
		panic("clickgraph: graph not frozen")
	}
}

// ConceptDegree returns the number of stories adjacent to a concept node.
func (g *Graph) ConceptDegree(c uint32) int {
	g.mustFrozen()
	var it rowIter
	g.fwd.iterInto(c, &it)
	return it.deg
}

// StoryDegree returns the number of concepts adjacent to a story node.
func (g *Graph) StoryDegree(s uint32) int {
	g.mustFrozen()
	var it rowIter
	g.rev.iterInto(s, &it)
	return it.deg
}

// VisitConcept calls fn for every (story node, clicks) edge of a concept
// node, in ascending story order.
func (g *Graph) VisitConcept(c uint32, fn func(story, clicks uint32)) {
	g.mustFrozen()
	var it rowIter
	g.fwd.iterInto(c, &it)
	for {
		nbr, w, ok := it.next()
		if !ok {
			return
		}
		fn(nbr, w)
	}
}

// VisitStory calls fn for every (concept node, clicks) edge of a story
// node, in ascending concept order.
func (g *Graph) VisitStory(s uint32, fn func(concept, clicks uint32)) {
	g.mustFrozen()
	var it rowIter
	g.rev.iterInto(s, &it)
	for {
		nbr, w, ok := it.next()
		if !ok {
			return
		}
		fn(nbr, w)
	}
}

// Clicks returns the click weight of edge (concept node, story node), or
// (0, false) when absent. Seeks through the skip table, decoding at most
// skipSpan−1 gaps.
func (g *Graph) Clicks(c, s uint32) (uint32, bool) {
	g.mustFrozen()
	return g.fwd.seek(c, s)
}
