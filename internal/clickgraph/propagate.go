// Simrank++-style evidence-weighted affinity propagation (PAPERS.md:
// Antonellis et al., "Simrank++: query rewriting through link analysis of
// the click graph"). Each sweep pushes the active side's mass across its
// edges with transition weight decay·ev(clicks)/Σ ev — the evidence-
// weighted random walk of Simrank++ — alternating concept → story →
// concept.
//
// Determinism contract. A sweep runs one of two worker-independent modes,
// chosen only by frontier density (itself worker-independent):
//
//   - Dense pull (frontier ≥ half the active side): every destination node
//     sums its in-edges in ascending-source row order, reading a
//     pre-scaled source vector. Each node's sum is a fixed sequence, and
//     nodes partition into fixed ranges, so ANY worker count produces the
//     same bits with no merge step at all.
//   - Sparse push: the frontier splits into propShards fixed contiguous
//     segments; each shard accumulates into its own dense scratch
//     (touched-list zeroing, the relevance-miner idiom); the merge adds
//     shard contributions per node in ascending shard order and walks
//     nodes in ascending id order.
//
// In both modes worker count only changes which goroutine runs which fixed
// work unit, never a float summation order, so the output is bit-identical
// at Workers ∈ {1, 4, all}.
package clickgraph

import (
	"slices"

	"contextrank/internal/par"
)

const (
	// propShards is the fixed frontier shard count — NOT the worker
	// count. More shards than the usual core count keeps the work-stealing
	// loop of par.For busy; the count being fixed keeps summation order
	// worker-independent.
	propShards = 16
	// DefaultDecay is the Simrank++ decay factor C per hop.
	DefaultDecay = 0.8
)

// Propagator runs affinity sweeps over a frozen graph. Not safe for
// concurrent use; create one per goroutine (the graph itself is shared).
type Propagator struct {
	g     *Graph
	decay float64

	conc, story []float64
	onConcepts  bool // which side currently holds the mass

	frontier      []uint32
	frontierStale bool

	shards [propShards]shardAcc
	scaled []float64 // pre-scaled source vector of the dense pull mode

	sweeps int
}

type shardAcc struct {
	acc     []float64
	touched []uint32
}

// NewPropagator returns a propagator with DefaultDecay. The graph must be
// frozen.
func NewPropagator(g *Graph) *Propagator {
	g.mustFrozen()
	p := &Propagator{
		g:          g,
		decay:      DefaultDecay,
		conc:       make([]float64, g.NumConcepts()),
		story:      make([]float64, g.NumStories()),
		onConcepts: true,
	}
	return p
}

// SetDecay overrides the per-hop decay factor.
func (p *Propagator) SetDecay(c float64) { p.decay = c }

// Reset zeroes all mass and puts the propagator back on the concept side.
func (p *Propagator) Reset() {
	clear(p.conc)
	clear(p.story)
	p.onConcepts = true
	p.frontier = p.frontier[:0]
	p.frontierStale = false
	p.sweeps = 0
}

// SeedConcept adds mass to one concept node. Seeding is only valid while
// the mass sits on the concept side (before the first sweep or after an
// even number of sweeps).
func (p *Propagator) SeedConcept(c uint32, mass float64) {
	if !p.onConcepts {
		panic("clickgraph: SeedConcept while mass is on the story side")
	}
	p.conc[c] += mass
	p.frontierStale = true
}

// SeedUniform spreads unit mass uniformly over all concepts.
func (p *Propagator) SeedUniform() {
	if !p.onConcepts {
		panic("clickgraph: SeedUniform while mass is on the story side")
	}
	u := 1.0 / float64(len(p.conc))
	for i := range p.conc {
		p.conc[i] += u
	}
	p.frontierStale = true
}

// OnConcepts reports which side currently holds the mass.
func (p *Propagator) OnConcepts() bool { return p.onConcepts }

// Sweeps returns the number of sweeps run since the last Reset.
func (p *Propagator) Sweeps() int { return p.sweeps }

// ConceptScores returns the concept-side mass vector as a live view — do
// not modify; copy before mutating.
func (p *Propagator) ConceptScores() []float64 { return p.conc }

// StoryScores returns the story-side mass vector as a live view.
func (p *Propagator) StoryScores() []float64 { return p.story }

// Sweep pushes all mass one hop across the active side's edges. workers
// follows par.Workers semantics; any value produces bit-identical output.
func (p *Propagator) Sweep(workers int) {
	src, dst := p.conc, p.story
	s := &p.g.fwd
	norm := p.g.normF
	if !p.onConcepts {
		src, dst = p.story, p.conc
		s = &p.g.rev
		norm = p.g.normR
	}
	if p.frontierStale {
		p.rebuildFrontier(src)
	}

	// Dense frontier: pull over the destination side. rev holds the
	// in-edges of dst when pushing fwd and vice versa.
	if len(p.frontier) >= len(src)/2 {
		in := &p.g.rev
		if !p.onConcepts {
			in = &p.g.fwd
		}
		p.sweepPull(in, src, dst, norm, workers)
		p.onConcepts = !p.onConcepts
		p.sweeps++
		return
	}

	for si := range p.shards {
		sh := &p.shards[si]
		if len(sh.acc) < len(dst) {
			sh.acc = make([]float64, len(dst))
		}
	}

	n := len(p.frontier)
	par.For(workers, propShards, func(si int) {
		lo, hi := shardRange(n, si)
		sh := &p.shards[si]
		acc := sh.acc
		touched := sh.touched[:0]
		// Frontier nodes ascend within the shard, so the cursor resumes
		// from the previous row's end and each row decodes at most once.
		cur := rowCursor{next: -1}
		for _, node := range p.frontier[lo:hi] {
			score := src[node]
			if score == 0 || norm[node] == 0 {
				src[node] = 0
				continue
			}
			push := p.decay * score / norm[node]
			s.cursorInto(node, &cur)
			it := &cur.it
			for {
				nbr, w, ok := it.next()
				if !ok {
					break
				}
				if acc[nbr] == 0 {
					touched = append(touched, nbr)
				}
				acc[nbr] += push * evidence(w)
			}
			// Mass moves: each frontier node belongs to exactly one
			// shard, so this write is race-free.
			src[node] = 0
		}
		sh.touched = touched
	})

	total := 0
	for si := range p.shards {
		total += len(p.shards[si].touched)
	}
	if total >= len(dst)/2 {
		p.mergeDense(dst, workers)
	} else {
		p.mergeSparse(dst)
	}
	p.onConcepts = !p.onConcepts
	p.sweeps++
}

// sweepPull computes dst[t] = Σ_n scaled[n]·ev(w(n,t)) over in's row t,
// where scaled[n] = decay·src[n]/norm[n]. Row order fixes each node's
// summation sequence and nodes split into fixed ranges, so the result is
// worker-independent without any merge.
func (p *Propagator) sweepPull(in *side, src, dst, norm []float64, workers int) {
	if len(p.scaled) < len(src) {
		p.scaled = make([]float64, len(src))
	}
	scaled := p.scaled[:len(src)]
	for i, v := range src {
		if v != 0 && norm[i] != 0 {
			scaled[i] = p.decay * v / norm[i]
		} else {
			scaled[i] = 0
		}
	}
	par.For(workers, propShards, func(ri int) {
		lo, hi := shardRange(len(dst), ri)
		cur := rowCursor{next: -1}
		for t := lo; t < hi; t++ {
			in.cursorInto(uint32(t), &cur)
			it := &cur.it
			sum := 0.0
			for {
				nbr, w, ok := it.next()
				if !ok {
					break
				}
				sum += scaled[nbr] * evidence(w)
			}
			dst[t] = sum
		}
	})
	clear(src)
	p.frontier = p.frontier[:0]
	for t, v := range dst {
		if v != 0 {
			p.frontier = append(p.frontier, uint32(t))
		}
	}
}

// SweepN runs n sweeps.
func (p *Propagator) SweepN(n, workers int) {
	for i := 0; i < n; i++ {
		p.Sweep(workers)
	}
}

// rebuildFrontier scans the active side for nonzero mass.
func (p *Propagator) rebuildFrontier(src []float64) {
	p.frontier = p.frontier[:0]
	for i, v := range src {
		if v != 0 {
			p.frontier = append(p.frontier, uint32(i))
		}
	}
	p.frontierStale = false
}

// shardRange is the half-open slice of shard si over n items: fixed
// contiguous segments, independent of worker count.
func shardRange(n, si int) (int, int) {
	lo := n * si / propShards
	hi := n * (si + 1) / propShards
	return lo, hi
}

// mergeDense folds all shard accumulators into dst, parallel over fixed
// target ranges. For each node the shard contributions add in ascending
// shard order — the canonical summation order.
func (p *Propagator) mergeDense(dst []float64, workers int) {
	par.For(workers, propShards, func(ri int) {
		lo, hi := shardRange(len(dst), ri)
		for t := lo; t < hi; t++ {
			sum := 0.0
			for si := range p.shards {
				sum += p.shards[si].acc[t]
				p.shards[si].acc[t] = 0
			}
			dst[t] = sum
		}
	})
	for si := range p.shards {
		p.shards[si].touched = p.shards[si].touched[:0]
	}
	p.frontier = p.frontier[:0]
	for t, v := range dst {
		if v != 0 {
			p.frontier = append(p.frontier, uint32(t))
		}
	}
}

// mergeSparse folds only touched nodes, serially: shards in ascending
// order, so per-node adds follow the same canonical order as mergeDense.
// The union of touched lists, sorted and deduplicated, becomes the next
// frontier.
func (p *Propagator) mergeSparse(dst []float64) {
	next := p.frontier[:0]
	for si := range p.shards {
		sh := &p.shards[si]
		for _, t := range sh.touched {
			dst[t] += sh.acc[t]
			sh.acc[t] = 0
			next = append(next, t)
		}
		sh.touched = sh.touched[:0]
	}
	slices.Sort(next)
	p.frontier = slices.Compact(next)
}
