// ORCAS-scale click-log synthesis. clicksim.Simulate composes full story
// text and samples clicks with an exact Bernoulli loop — perfect at
// paper scale (thousands of stories), far too slow at ORCAS scale
// (millions of clicked pairs). Synthesize keeps the clicksim click model
// (the same Config.TrueCTR latent CTR, power-law views, log-normal CTR
// noise) but skips text composition and samples Binomial(views, ctr)
// through Poisson/normal approximations, generating millions of edges in
// tens of milliseconds.
//
// Stories are generated in synthShards fixed shards, each with its own
// par.Seed-derived rng, and shard outputs are concatenated in shard order
// — the same edge list at any worker count.
package clickgraph

import (
	"math"
	"math/rand"
	"strconv"

	"contextrank/internal/clicksim"
	"contextrank/internal/par"
	"contextrank/internal/world"
)

// synthShards is the fixed story shard count of Synthesize, independent of
// the worker count.
const synthShards = 64

// SynthConfig parameterizes Synthesize.
type SynthConfig struct {
	// Seed drives every random draw (shard rngs derive via par.Seed).
	Seed int64
	// Stories and Concepts size the two node sides. Defaults 250_000 and
	// 4_000.
	Stories, Concepts int
	// MeanEntities is the mean number of annotated entities per story.
	// Default 8.
	MeanEntities float64
	// ZipfS skews concept popularity: concept i is drawn with weight
	// (i+1)^−ZipfS, so head concepts accumulate the high-degree rows that
	// exercise the bitmap representation. Default 0.7.
	ZipfS float64
	// Click is the clicksim click model; zero fields take the clicksim
	// defaults.
	Click clicksim.Config
}

func (c SynthConfig) withDefaults() SynthConfig {
	if c.Stories == 0 {
		c.Stories = 250_000
	}
	if c.Concepts == 0 {
		c.Concepts = 4_000
	}
	if c.MeanEntities == 0 {
		c.MeanEntities = 8
	}
	if c.ZipfS == 0 {
		c.ZipfS = 0.7
	}
	c.Click = c.Click.WithDefaults()
	return c
}

type synthEdge struct {
	c, s, w uint32
}

// Synthesize builds (without freezing) a graph whose edges follow the
// clicksim click model at the configured scale. Story node ids are the
// story indices 0..Stories−1; concept names are "c0".."cN" interned in
// order, so node id equals concept index.
func Synthesize(cfg SynthConfig, workers int) *Graph {
	cfg = cfg.withDefaults()
	g := New()

	// Concept traits and popularity, from the root rng.
	rng := rand.New(rand.NewSource(cfg.Seed))
	concepts := make([]world.Concept, cfg.Concepts)
	weights := make([]float64, cfg.Concepts)
	for i := range concepts {
		concepts[i] = world.Concept{
			ID:       i,
			Name:     "c" + strconv.Itoa(i),
			Interest: rng.Float64(),
			Quality:  0.3 + 0.7*rng.Float64(),
		}
		g.InternConcept(concepts[i].Name)
		weights[i] = math.Pow(float64(i+1), -cfg.ZipfS)
	}
	zipf := newAlias(weights)
	for i := 0; i < cfg.Stories; i++ {
		g.InternStory(i)
	}

	perShard := (cfg.Stories + synthShards - 1) / synthShards
	shardEdges := par.Map(workers, synthShards, func(si int) []synthEdge {
		lo := si * perShard
		hi := lo + perShard
		if hi > cfg.Stories {
			hi = cfg.Stories
		}
		if lo >= hi {
			return nil
		}
		srng := rand.New(rand.NewSource(par.Seed(cfg.Seed, si+1)))
		edges := make([]synthEdge, 0, int(float64(hi-lo)*cfg.MeanEntities/2))
		for s := lo; s < hi; s++ {
			views := 8 + int(float64(cfg.Click.MaxViews)*math.Pow(srng.Float64(), 2.5))
			nEnt := 1 + int(srng.ExpFloat64()*(cfg.MeanEntities-1))
			if nEnt > 4*int(cfg.MeanEntities) {
				nEnt = 4 * int(cfg.MeanEntities)
			}
			for e := 0; e < nEnt; e++ {
				ci := zipf.draw(srng)
				degree := srng.Float64()
				position := e*300 + srng.Intn(200)
				ctr := cfg.Click.TrueCTR(&concepts[ci], degree, position)
				ctr *= math.Exp(cfg.Click.CTRNoiseSigma * srng.NormFloat64())
				if ctr > 0.95 {
					ctr = 0.95
				}
				clicks := approxBinomial(srng, views, ctr)
				if clicks > 0 {
					edges = append(edges, synthEdge{c: uint32(ci), s: uint32(s), w: uint32(clicks)})
				}
			}
		}
		return edges
	})
	for _, edges := range shardEdges {
		for _, e := range edges {
			g.AddClicksID(e.c, e.s, e.w)
		}
	}
	return g
}

// alias is a Walker/Vose alias table: O(1) weighted sampling from one
// uniform draw, replacing the O(log n) CDF binary search on the synthesis
// hot path.
type alias struct {
	prob []float64
	alt  []int32
}

func newAlias(weights []float64) alias {
	n := len(weights)
	a := alias{prob: make([]float64, n), alt: make([]int32, n)}
	total := 0.0
	for _, w := range weights {
		total += w
	}
	scaled := make([]float64, n)
	small := make([]int32, 0, n)
	large := make([]int32, 0, n)
	for i, w := range weights {
		scaled[i] = w * float64(n) / total
		if scaled[i] < 1 {
			small = append(small, int32(i))
		} else {
			large = append(large, int32(i))
		}
	}
	for len(small) > 0 && len(large) > 0 {
		s := small[len(small)-1]
		small = small[:len(small)-1]
		l := large[len(large)-1]
		large = large[:len(large)-1]
		a.prob[s] = scaled[s]
		a.alt[s] = l
		scaled[l] -= 1 - scaled[s]
		if scaled[l] < 1 {
			small = append(small, l)
		} else {
			large = append(large, l)
		}
	}
	for _, i := range large {
		a.prob[i] = 1
	}
	for _, i := range small {
		a.prob[i] = 1 // numerical leftovers
	}
	return a
}

// draw samples an index using a single uniform variate: the integer part
// picks the column, the fractional part settles the coin flip.
func (a alias) draw(rng *rand.Rand) int {
	u := rng.Float64() * float64(len(a.prob))
	i := int(u)
	if u-float64(i) < a.prob[i] {
		return i
	}
	return int(a.alt[i])
}

// approxBinomial samples approximately Binomial(n, p) in O(n·p) instead of
// O(n): Poisson via Knuth multiplication for small means, the normal
// approximation above. Clamped to [0, n].
func approxBinomial(rng *rand.Rand, n int, p float64) int {
	if p <= 0 || n == 0 {
		return 0
	}
	if p >= 1 {
		return n
	}
	np := float64(n) * p
	var k int
	if np < 12 {
		// Poisson(np) ≈ Binomial(n, p) for small p, sampled by inverse
		// transform: one uniform draw walks the CDF in O(np) multiplies.
		u := rng.Float64()
		pk := math.Exp(-np)
		cdf := pk
		for u > cdf && k < 8*n {
			k++
			pk *= np / float64(k)
			cdf += pk
		}
	} else {
		k = int(math.Round(np + math.Sqrt(np*(1-p))*rng.NormFloat64()))
	}
	if k < 0 {
		k = 0
	}
	if k > n {
		k = n
	}
	return k
}
