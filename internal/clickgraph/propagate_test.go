package clickgraph

import (
	"math"
	"testing"
)

func synthFrozen(tb testing.TB, stories, concepts int) *Graph {
	tb.Helper()
	g := Synthesize(SynthConfig{Seed: 42, Stories: stories, Concepts: concepts}, 0)
	g.FreezeWorkers(0)
	return g
}

// TestPropagateParallelEquivalence is the differential determinism test:
// after seeding and sweeping, the score vectors must be byte-identical at
// Workers ∈ {1, 4, all} — compared through math.Float64bits, not epsilon.
func TestPropagateParallelEquivalence(t *testing.T) {
	g := synthFrozen(t, 8_000, 600)
	run := func(workers int) ([]float64, []float64) {
		p := NewPropagator(g)
		p.SeedConcept(3, 1)
		p.SeedConcept(17, 0.5)
		p.SweepN(6, workers)
		return p.ConceptScores(), p.StoryScores()
	}
	baseC, baseS := run(1)
	for _, w := range []int{4, 0} {
		c, s := run(w)
		for i := range baseC {
			if math.Float64bits(c[i]) != math.Float64bits(baseC[i]) {
				t.Fatalf("workers=%d concept %d: %x != %x", w, i, math.Float64bits(c[i]), math.Float64bits(baseC[i]))
			}
		}
		for i := range baseS {
			if math.Float64bits(s[i]) != math.Float64bits(baseS[i]) {
				t.Fatalf("workers=%d story %d differs", w, i)
			}
		}
	}
}

// TestPropagateUniformEquivalence repeats the bit-identity check on the
// dense-frontier path (SeedUniform touches every row, driving the dense
// merge).
func TestPropagateUniformEquivalence(t *testing.T) {
	g := synthFrozen(t, 5_000, 400)
	run := func(workers int) []float64 {
		p := NewPropagator(g)
		p.SeedUniform()
		p.SweepN(4, workers)
		return p.ConceptScores()
	}
	base := run(1)
	for _, w := range []int{4, 0} {
		c := run(w)
		for i := range base {
			if math.Float64bits(c[i]) != math.Float64bits(base[i]) {
				t.Fatalf("workers=%d concept %d differs", w, i)
			}
		}
	}
}

// TestPropagateMassDecays: total mass after a sweep is at most decay times
// the input mass (evidence weights are < 1, empty rows absorb).
func TestPropagateMassDecays(t *testing.T) {
	g := synthFrozen(t, 2_000, 200)
	p := NewPropagator(g)
	p.SeedUniform()
	prev := 1.0
	for i := 0; i < 6; i++ {
		p.Sweep(0)
		side := p.StoryScores()
		if p.OnConcepts() {
			side = p.ConceptScores()
		}
		total := 0.0
		for _, v := range side {
			total += v
		}
		if total > prev*DefaultDecay*1.0000001 {
			t.Fatalf("sweep %d: mass %.9f exceeds decay bound %.9f", i, total, prev*DefaultDecay)
		}
		if i < 2 && total == 0 {
			t.Fatalf("sweep %d: all mass vanished", i)
		}
		prev = total
	}
	if p.Sweeps() != 6 {
		t.Fatalf("Sweeps() = %d", p.Sweeps())
	}
}

// TestPropagatorReset: a reset propagator reproduces the original run
// bit-for-bit (pooled shard state fully cleared).
func TestPropagatorReset(t *testing.T) {
	g := synthFrozen(t, 2_000, 200)
	p := NewPropagator(g)
	p.SeedConcept(1, 1)
	p.SweepN(4, 0)
	first := append([]float64(nil), p.ConceptScores()...)
	p.Reset()
	p.SeedConcept(1, 1)
	p.SweepN(4, 0)
	for i, v := range p.ConceptScores() {
		if math.Float64bits(v) != math.Float64bits(first[i]) {
			t.Fatalf("concept %d differs after Reset", i)
		}
	}
}

// TestRelatedFindsCoClicked: on a hand-built graph, the concept sharing
// a clicked story with the query must outrank one connected only at two
// hops, and unrelated components must not appear.
func TestRelatedFindsCoClicked(t *testing.T) {
	g := New()
	// Component 1: a,b co-clicked on story 0 (heavily); b,c share story 1.
	g.AddClicks("a", 0, 5)
	g.AddClicks("b", 0, 5)
	g.AddClicks("b", 1, 2)
	g.AddClicks("c", 1, 2)
	// Component 2: d alone on story 2.
	g.AddClicks("d", 2, 4)
	g.Freeze()

	got := g.Related("a", 10)
	if len(got) < 2 {
		t.Fatalf("Related(a) = %v, want ≥2 results", got)
	}
	if got[0].Name != "b" {
		t.Fatalf("Related(a)[0] = %s, want b", got[0].Name)
	}
	for _, r := range got {
		if r.Name == "d" {
			t.Fatal("unconnected concept d in Related(a)")
		}
		if r.Name == "a" {
			t.Fatal("seed concept returned by Related")
		}
	}
	foundC := false
	for _, r := range got {
		foundC = foundC || r.Name == "c"
	}
	if !foundC {
		t.Fatal("two-hop concept c missing from Related(a)")
	}
}

// TestRewriteEvidenceMultiplier: a rewrite supported by two co-clicked
// stories must beat one supported by a single story of the same strength.
func TestRewriteEvidenceMultiplier(t *testing.T) {
	g := New()
	// q and "two" share stories 0 and 1; q and "one" share only story 2.
	for s, pair := range [][2]string{{"q", "two"}, {"q", "two"}, {"q", "one"}} {
		g.AddClicks(pair[0], s, 3)
		g.AddClicks(pair[1], s, 3)
	}
	g.Freeze()
	got := g.Rewrite("q", 5)
	if len(got) != 2 {
		t.Fatalf("Rewrite(q) = %v, want 2 results", got)
	}
	if got[0].Name != "two" || got[1].Name != "one" {
		t.Fatalf("Rewrite(q) order = [%s %s], want [two one]", got[0].Name, got[1].Name)
	}
	if !(got[0].Score > got[1].Score) {
		t.Fatalf("evidence multiplier did not separate scores: %v", got)
	}
}

// TestQueryScratchReuse: repeated queries through the pool must return
// identical results (released scratch fully zeroed) and never alias.
func TestQueryScratchReuse(t *testing.T) {
	g := synthFrozen(t, 1_000, 120)
	name := g.ConceptName(0)
	first := g.Related(name, 8)
	for i := 0; i < 10; i++ {
		other := g.Related(g.ConceptName(uint32(1+i%20)), 8)
		_ = other
		again := g.Related(name, 8)
		if len(again) != len(first) {
			t.Fatalf("iteration %d: result length drifted", i)
		}
		for j := range again {
			if again[j] != first[j] {
				t.Fatalf("iteration %d: result %d drifted: %+v vs %+v", i, j, again[j], first[j])
			}
		}
	}
	rw := g.Rewrite(name, 8)
	rw2 := g.Rewrite(name, 8)
	if len(rw) != len(rw2) {
		t.Fatal("Rewrite not reproducible through pooled scratch")
	}
	for j := range rw {
		if rw[j] != rw2[j] {
			t.Fatalf("Rewrite result %d drifted", j)
		}
	}
}

// TestSynthDeterministicAcrossWorkers: the synthesized edge list is the
// same at any worker count, and edge volume tracks the configured scale.
func TestSynthDeterministicAcrossWorkers(t *testing.T) {
	cfg := SynthConfig{Seed: 7, Stories: 3_000, Concepts: 300}
	base := Synthesize(cfg, 1)
	for _, w := range []int{4, 0} {
		g := Synthesize(cfg, w)
		if !uint32sEqual(g.srcs, base.srcs) || !uint32sEqual(g.dsts, base.dsts) || !uint32sEqual(g.wts, base.wts) {
			t.Fatalf("workers=%d: synthesized edges differ", w)
		}
	}
	if len(base.srcs) < 3_000 {
		t.Fatalf("synth too sparse: %d staged edges", len(base.srcs))
	}
	// Unknown concepts answer empty, not panic.
	base.FreezeWorkers(0)
	if got := base.Related("no-such-concept", 3); got != nil {
		t.Fatalf("Related(unknown) = %v", got)
	}
}

var sinkScores []Scored

// BenchmarkRelated measures the pooled query path (steady-state allocs are
// the result slice only).
func BenchmarkRelated(b *testing.B) {
	g := synthFrozen(b, 10_000, 800)
	name := g.ConceptName(2)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		sinkScores = g.Related(name, 10)
	}
}
