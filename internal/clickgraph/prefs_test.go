package clickgraph

import (
	"math/rand"
	"testing"

	"contextrank/internal/clicksim"
	"contextrank/internal/newsgen"
	"contextrank/internal/online"
	"contextrank/internal/ranksvm"
	"contextrank/internal/world"
)

func report(storyID, views int, ents ...clicksim.EntityStat) clicksim.Report {
	return clicksim.Report{Story: &newsgen.Story{ID: storyID}, Views: views, Entities: ents}
}

func ent(c *world.Concept, pos, clicks int) clicksim.EntityStat {
	return clicksim.EntityStat{Concept: c, Position: pos, Clicks: clicks}
}

// TestExtractPreferencesClickSkip pins the Query-Chains rule: a pair is
// emitted only when the winner sits strictly later AND strictly
// out-clicks, above the noise floor.
func TestExtractPreferencesClickSkip(t *testing.T) {
	a := &world.Concept{Name: "alpha"}
	b := &world.Concept{Name: "beta"}
	c := &world.Concept{Name: "gamma"}
	reports := []clicksim.Report{
		// beta (pos 500, 6 clicks) beats alpha (pos 10, 2 clicks);
		// gamma (pos 900, 1 click) is under the noise floor.
		report(1, 100, ent(a, 10, 2), ent(b, 500, 6), ent(c, 900, 1)),
		// Earlier-position winner: no pair (position bias explains it).
		report(2, 100, ent(a, 10, 6), ent(b, 500, 2)),
	}
	prefs := ExtractPreferences(reports)
	if len(prefs) != 1 {
		t.Fatalf("got %d prefs (%+v), want 1", len(prefs), prefs)
	}
	p := prefs[0]
	if p.Winner != "beta" || p.Loser != "alpha" || p.StoryID != 1 {
		t.Fatalf("pref = %+v", p)
	}
	if p.Margin <= 0 || p.WinnerClicks != 6 || p.LoserClicks != 2 {
		t.Fatalf("pref fields = %+v", p)
	}
}

// TestPreferencesTrainRankSVM: pairs extracted from a simulated click log
// train a ranksvm model that recovers the hidden quality ordering far
// above chance.
func TestPreferencesTrainRankSVM(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	// Hidden per-concept quality drives clicks; the feature vector leaks a
	// noisy view of it, like the paper's relevance features.
	const nConcepts = 30
	quality := make([]float64, nConcepts)
	feature := make([]float64, nConcepts)
	concepts := make([]*world.Concept, nConcepts)
	for i := range quality {
		quality[i] = rng.Float64()
		feature[i] = quality[i] + 0.1*rng.NormFloat64()
		concepts[i] = &world.Concept{Name: "q" + string(rune('a'+i%26)) + string(rune('a'+i/26))}
	}
	var reports []clicksim.Report
	for s := 0; s < 120; s++ {
		views := 200
		var ents []clicksim.EntityStat
		for e := 0; e < 5; e++ {
			ci := rng.Intn(nConcepts)
			ctr := 0.02 + 0.1*quality[ci]
			clicks := 0
			for v := 0; v < views; v++ {
				if rng.Float64() < ctr {
					clicks++
				}
			}
			ents = append(ents, ent(concepts[ci], e*400, clicks))
		}
		reports = append(reports, report(s, views, ents...))
	}
	prefs := ExtractPreferences(reports)
	if len(prefs) < 50 {
		t.Fatalf("only %d prefs extracted", len(prefs))
	}
	idx := func(name string) int {
		for i, c := range concepts {
			if c.Name == name {
				return i
			}
		}
		t.Fatalf("unknown concept %s", name)
		return -1
	}
	inst := Instances(prefs, func(_ int, concept string) []float64 {
		return []float64{feature[idx(concept)], 1}
	})
	model, err := ranksvm.Train(inst, ranksvm.Options{Seed: 42})
	if err != nil {
		t.Fatal(err)
	}
	// Pairwise accuracy on the hidden quality ordering.
	correct, total := 0, 0
	for i := 0; i < nConcepts; i++ {
		for j := i + 1; j < nConcepts; j++ {
			si := model.Score([]float64{feature[i], 1})
			sj := model.Score([]float64{feature[j], 1})
			if si == sj {
				continue
			}
			total++
			if (si > sj) == (quality[i] > quality[j]) {
				correct++
			}
		}
	}
	if total == 0 {
		t.Fatal("degenerate model: all scores equal")
	}
	acc := float64(correct) / float64(total)
	if acc < 0.8 {
		t.Fatalf("pairwise accuracy %.3f < 0.8 (%d/%d)", acc, correct, total)
	}
}

// TestEventsAggregation: Events sums views/clicks per concept, sorted by
// name, and feeds online.Tracker so heavily-clicked concepts surface.
func TestEventsAggregation(t *testing.T) {
	a := &world.Concept{Name: "alpha"}
	b := &world.Concept{Name: "beta"}
	reports := []clicksim.Report{
		report(1, 100, ent(a, 0, 8), ent(b, 300, 1)),
		report(2, 50, ent(a, 0, 4)),
	}
	evs := Events(reports)
	if len(evs) != 2 || evs[0].Concept != "alpha" || evs[1].Concept != "beta" {
		t.Fatalf("Events = %+v", evs)
	}
	if evs[0].Views != 150 || evs[0].Clicks != 12 || evs[1].Views != 100 || evs[1].Clicks != 1 {
		t.Fatalf("aggregation wrong: %+v", evs)
	}

	tr := online.NewTracker(online.Config{})
	for i := 0; i < 5; i++ {
		tr.Tick(evs)
	}
	ctrA, _ := tr.MovingCTR("alpha")
	ctrB, _ := tr.MovingCTR("beta")
	if !(ctrA > ctrB) {
		t.Fatalf("tracker CTRs not ordered: alpha=%.4f beta=%.4f", ctrA, ctrB)
	}
}

// TestPrefsFromSimulatedGraphPipeline: the full chain — clicksim reports →
// graph + preferences + events — stays consistent: every preference
// endpoint is a graph node wherever it earned a click.
func TestPrefsFromSimulatedGraphPipeline(t *testing.T) {
	w := world.New(world.Config{Seed: 42, VocabSize: 1200, NumTopics: 8, NumConcepts: 120})
	stories := newsgen.Generate(w, newsgen.Config{Seed: 42, NumStories: 80})
	reports := clicksim.Clean(clicksim.Simulate(stories, clicksim.Config{Seed: 42}))
	if len(reports) < 10 {
		t.Fatalf("only %d cleaned reports", len(reports))
	}
	g := FromReports(reports, 0)
	if g.Stats().Edges == 0 {
		t.Fatal("no edges from simulated reports")
	}
	prefs := ExtractPreferences(reports)
	for _, p := range prefs {
		if p.WinnerClicks < MinWinnerClicks {
			t.Fatalf("pref under noise floor: %+v", p)
		}
		if _, ok := g.ConceptID(p.Winner); !ok {
			t.Fatalf("winner %q not a graph node", p.Winner)
		}
		sn, ok := g.StoryNode(p.StoryID)
		if !ok {
			t.Fatalf("story %d not a graph node", p.StoryID)
		}
		cid, _ := g.ConceptID(p.Winner)
		if w, ok := g.Clicks(cid, sn); !ok || int(w) < p.WinnerClicks {
			t.Fatalf("graph weight %d inconsistent with pref %+v", w, p)
		}
	}
}
