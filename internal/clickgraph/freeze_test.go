package clickgraph

import (
	"bytes"
	"fmt"
	"math/rand"
	"testing"
)

// refGraph is the naive reference the frozen CSR is differentially
// tested against: plain nested maps with summed weights.
type refGraph struct {
	fwd map[uint32]map[uint32]uint32
	rev map[uint32]map[uint32]uint32
}

func newRef() *refGraph {
	return &refGraph{fwd: map[uint32]map[uint32]uint32{}, rev: map[uint32]map[uint32]uint32{}}
}

func (r *refGraph) add(c, s, w uint32) {
	if r.fwd[c] == nil {
		r.fwd[c] = map[uint32]uint32{}
	}
	if r.rev[s] == nil {
		r.rev[s] = map[uint32]uint32{}
	}
	r.fwd[c][s] += w
	r.rev[s][c] += w
}

// buildRandom stages a random edge list (with duplicates and zero-degree
// nodes) into both a Graph and the reference.
func buildRandom(rng *rand.Rand, nC, nS, nEdges int) (*Graph, *refGraph) {
	g := New()
	ref := newRef()
	for c := 0; c < nC; c++ {
		g.InternConcept(fmt.Sprintf("c%d", c))
	}
	for s := 0; s < nS; s++ {
		g.InternStory(s)
	}
	for e := 0; e < nEdges; e++ {
		c := uint32(rng.Intn(nC))
		s := uint32(rng.Intn(nS))
		w := uint32(1 + rng.Intn(6))
		g.AddClicksID(c, s, w)
		ref.add(c, s, w)
	}
	return g, ref
}

// checkAgainstRef verifies every row of both sides, plus seeks for present
// and absent edges.
func checkAgainstRef(t *testing.T, g *Graph, ref *refGraph) {
	t.Helper()
	edges := 0
	for c := 0; c < g.NumConcepts(); c++ {
		want := ref.fwd[uint32(c)]
		got := map[uint32]uint32{}
		prev := int64(-1)
		g.VisitConcept(uint32(c), func(s, w uint32) {
			if int64(s) <= prev {
				t.Fatalf("concept %d: neighbors not strictly ascending at %d", c, s)
			}
			prev = int64(s)
			got[s] = w
		})
		if len(got) != len(want) {
			t.Fatalf("concept %d: got %d neighbors, want %d", c, len(got), len(want))
		}
		for s, w := range want {
			if got[s] != w {
				t.Fatalf("concept %d story %d: weight %d, want %d", c, s, got[s], w)
			}
			if cw, ok := g.Clicks(uint32(c), s); !ok || cw != w {
				t.Fatalf("Clicks(%d,%d) = %d,%v want %d,true", c, s, cw, ok, w)
			}
		}
		if g.ConceptDegree(uint32(c)) != len(want) {
			t.Fatalf("concept %d degree %d want %d", c, g.ConceptDegree(uint32(c)), len(want))
		}
		edges += len(want)
	}
	for s := 0; s < g.NumStories(); s++ {
		want := ref.rev[uint32(s)]
		got := map[uint32]uint32{}
		g.VisitStory(uint32(s), func(c, w uint32) { got[c] = w })
		if len(got) != len(want) {
			t.Fatalf("story %d: got %d neighbors, want %d", s, len(got), len(want))
		}
		for c, w := range want {
			if got[c] != w {
				t.Fatalf("story %d concept %d: weight %d, want %d", s, c, got[c], w)
			}
		}
	}
	if g.Stats().Edges != edges {
		t.Fatalf("Stats().Edges = %d, want %d", g.Stats().Edges, edges)
	}
	// Absent-edge seeks, including ids past every neighbor.
	if _, ok := g.Clicks(0, uint32(g.NumStories())); ok {
		t.Fatal("Clicks out of universe reported present")
	}
}

func TestFreezeDifferentialRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	shapes := []struct{ nC, nS, nE int }{
		{1, 1, 1},      // single edge
		{5, 3, 0},      // all rows empty
		{4, 300, 40},   // degree-1 dominated
		{3, 2000, 900}, // dup-heavy
		{50, 400, 3000},
		{2, 130, 4000}, // dense: forces bitmap + skip rows
	}
	for _, sh := range shapes {
		g, ref := buildRandom(rng, sh.nC, sh.nS, sh.nE)
		g.FreezeWorkers(0)
		checkAgainstRef(t, g, ref)
	}
}

// TestFreezeRandomDegreeDistributions is the property test over random
// degree shapes: power-law row sizes spanning the bitmap/Golomb crossover
// and the skip-table threshold.
func TestFreezeRandomDegreeDistributions(t *testing.T) {
	rng := rand.New(rand.NewSource(1009))
	for trial := 0; trial < 20; trial++ {
		nC := 1 + rng.Intn(40)
		nS := 1 + rng.Intn(3000)
		nE := rng.Intn(5000)
		g, ref := buildRandom(rng, nC, nS, nE)
		g.FreezeWorkers(1 + rng.Intn(8))
		checkAgainstRef(t, g, ref)
	}
}

// TestBitmapCrossover pins the representation choice: a row spanning the
// whole universe must freeze as a bitmap, a sparse row must not, and both
// must decode identically to the reference.
func TestBitmapCrossover(t *testing.T) {
	g := New()
	ref := newRef()
	g.InternConcept("dense")
	g.InternConcept("sparse")
	for s := 0; s < 256; s++ {
		g.InternStory(s)
	}
	for s := 0; s < 256; s++ { // full row: bitmap wins
		g.AddClicksID(0, uint32(s), 1)
		ref.add(0, uint32(s), 1)
	}
	for s := 0; s < 256; s += 64 { // 4 spread neighbors: gaps win
		g.AddClicksID(1, uint32(s), 2)
		ref.add(1, uint32(s), 2)
	}
	g.Freeze()
	if g.Stats().BitmapRows == 0 {
		t.Fatal("expected at least one bitmap row")
	}
	if !g.fwd.isBitmap(0) {
		t.Fatal("dense row not stored as bitmap")
	}
	if g.fwd.isBitmap(1) {
		t.Fatal("sparse row stored as bitmap")
	}
	checkAgainstRef(t, g, ref)
}

// TestSkipSeek exercises the skip table: a long gap row must seek to every
// neighbor and reject every absent id, landing inside the right restart
// span.
func TestSkipSeek(t *testing.T) {
	g := New()
	g.InternConcept("long")
	n := 10 * skipSpan
	for s := 0; s < 3*n; s++ {
		g.InternStory(s)
	}
	present := map[uint32]uint32{}
	for i := 0; i < n; i++ {
		s := uint32(3 * i) // stride keeps gaps cheap: stays a gap row
		w := uint32(1 + i%5)
		g.AddClicksID(0, s, w)
		present[s] = w
	}
	g.Freeze()
	if g.fwd.isBitmap(0) {
		t.Skip("row froze as bitmap; stride too dense for this universe")
	}
	if len(g.fwd.skipRows) != 1 || g.fwd.skipRows[0] != 0 {
		t.Fatalf("skipRows = %v, want [0]", g.fwd.skipRows)
	}
	wantEntries := (n - 1) / skipSpan
	if got := int(g.fwd.skipIdx[1] - g.fwd.skipIdx[0]); got != wantEntries {
		t.Fatalf("skip entries = %d, want %d", got, wantEntries)
	}
	for s := uint32(0); s < uint32(3*n); s++ {
		w, ok := g.Clicks(0, s)
		if want, inSet := present[s]; inSet {
			if !ok || w != want {
				t.Fatalf("Clicks(0,%d) = %d,%v want %d,true", s, w, ok, want)
			}
		} else if ok {
			t.Fatalf("Clicks(0,%d) reported present", s)
		}
	}
}

// TestFreezeWorkerEquivalence: the frozen bytes must be identical at any
// worker count — chunk streams, offsets, and skip tables byte for byte.
func TestFreezeWorkerEquivalence(t *testing.T) {
	build := func(workers int) *Graph {
		rng := rand.New(rand.NewSource(7))
		g, _ := buildRandom(rng, 60, 2500, 20000)
		g.FreezeWorkers(workers)
		return g
	}
	base := build(1)
	for _, w := range []int{4, 0} {
		other := build(w)
		for side := 0; side < 2; side++ {
			a, b := &base.fwd, &other.fwd
			if side == 1 {
				a, b = &base.rev, &other.rev
			}
			if len(a.chunks) != len(b.chunks) {
				t.Fatalf("workers=%d side=%d chunk counts differ", w, side)
			}
			for ci := range a.chunks {
				if !bytes.Equal(a.chunks[ci], b.chunks[ci]) {
					t.Fatalf("workers=%d side=%d chunk %d differs", w, side, ci)
				}
			}
			if !uint32sEqual(a.off, b.off) || !uint32sEqual(a.skipRows, b.skipRows) ||
				!uint32sEqual(a.skipIdx, b.skipIdx) || !uint32sEqual(a.skipNbr, b.skipNbr) ||
				!uint32sEqual(a.skipOff, b.skipOff) {
				t.Fatalf("workers=%d side=%d tables differ", w, side)
			}
		}
		if base.Stats() != other.Stats() {
			t.Fatalf("workers=%d stats differ: %+v vs %+v", w, base.Stats(), other.Stats())
		}
	}
}

// TestFrozenRatio pins the compression contract at a small ORCAS-shaped
// scale: frozen adjacency ≤ 35% of the raw 12-byte edge list.
func TestFrozenRatio(t *testing.T) {
	g := Synthesize(SynthConfig{Seed: 42, Stories: 20_000, Concepts: 1_000}, 0)
	g.FreezeWorkers(0)
	st := g.Stats()
	if st.Edges < 50_000 {
		t.Fatalf("synth produced only %d edges", st.Edges)
	}
	ratio := float64(st.FrozenBytes) / float64(st.RawBytes)
	if ratio > 0.35 {
		t.Fatalf("frozen ratio %.3f > 0.35 (frozen=%d raw=%d)", ratio, st.FrozenBytes, st.RawBytes)
	}
}

func TestFreezeTwicePanics(t *testing.T) {
	g := New()
	g.AddClicks("a", 1, 2)
	g.Freeze()
	defer func() {
		if recover() == nil {
			t.Fatal("second Freeze did not panic")
		}
	}()
	g.Freeze()
}

func uint32sEqual(a, b []uint32) bool {
	if len(a) != len(b) {
		return false
	}
	for i := range a {
		if a[i] != b[i] {
			return false
		}
	}
	return true
}
