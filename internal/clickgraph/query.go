// Query-time graph expansion: Related walks evidence-weighted affinity a
// few round trips out from one concept; Rewrite is the exact two-hop
// Simrank++ rewrite score with the common-neighbor evidence multiplier.
// Both run serially on pooled dense scratch (zeroed via touched lists) and
// return fresh result slices.
package clickgraph

import "sort"

// Scored is one ranked expansion result.
type Scored struct {
	// ID is the concept node id.
	ID uint32
	// Name is the concept name.
	Name string
	// Score is the affinity or rewrite score.
	Score float64
}

// queryScratch is the pooled per-query workspace: dense per-side score
// arrays plus touched lists, and a dense common-neighbor counter for
// Rewrite. Released state is always fully zeroed (O(touched)).
type queryScratch struct {
	conc, story   []float64
	concT, storyT []uint32
	common        []uint32
	it            rowIter
}

func (g *Graph) getScratch() *queryScratch {
	if sc, ok := g.queryScratch.Get().(*queryScratch); ok {
		if len(sc.conc) >= g.NumConcepts() && len(sc.story) >= g.NumStories() {
			return sc
		}
	}
	return &queryScratch{
		conc:   make([]float64, g.NumConcepts()),
		story:  make([]float64, g.NumStories()),
		common: make([]uint32, g.NumConcepts()),
	}
}

func (g *Graph) putScratch(sc *queryScratch) {
	for _, c := range sc.concT {
		sc.conc[c] = 0
		sc.common[c] = 0
	}
	for _, s := range sc.storyT {
		sc.story[s] = 0
	}
	sc.concT = sc.concT[:0]
	sc.storyT = sc.storyT[:0]
	g.queryScratch.Put(sc)
}

// RelatedRounds returns the top-k concepts by affinity to the named
// concept after `rounds` concept→story→concept round trips (Related uses
// two). The seed concept itself is excluded. Ties break on ascending node
// id. Returns nil for unknown concepts.
func (g *Graph) RelatedRounds(concept string, k, rounds int) []Scored {
	g.mustFrozen()
	q, ok := g.ConceptID(concept)
	if !ok || k <= 0 {
		return nil
	}
	sc := g.getScratch()
	sc.conc[q] = 1
	sc.concT = append(sc.concT, q)
	for r := 0; r < rounds; r++ {
		// Push the accumulated concept mass out and back. Nothing is
		// drained on the concept side, so the final scores are the
		// decayed sum over all walk lengths up to 2·rounds — deeper
		// rounds add transitive affinity at geometrically fading weight.
		sc.storyT = g.pushSide(&g.fwd, g.normF, sc.conc, sc.concT, sc.story, sc.storyT, &sc.it)
		sc.concT = g.pushSide(&g.rev, g.normR, sc.story, sc.storyT, sc.conc, sc.concT, &sc.it)
		for _, s := range sc.storyT {
			sc.story[s] = 0
		}
		sc.storyT = sc.storyT[:0]
	}
	res := g.topConcepts(sc, q, k)
	g.putScratch(sc)
	return res
}

// Related returns the top-k affinity neighbors of a concept — the
// "related shortcut" suggestions of the click-graph ROADMAP item.
func (g *Graph) Related(concept string, k int) []Scored {
	return g.RelatedRounds(concept, k, 2)
}

// pushSide pushes mass from src's touched nodes across side s into dst,
// appending newly-touched dst nodes to dstT. Source entries keep their
// mass (callers drain explicitly); the walk is serial, in touched order.
func (g *Graph) pushSide(s *side, norm []float64, src []float64, srcT []uint32, dst []float64, dstT []uint32, it *rowIter) []uint32 {
	for _, node := range srcT {
		score := src[node]
		if score == 0 || norm[node] == 0 {
			continue
		}
		push := DefaultDecay * score / norm[node]
		s.iterInto(node, it)
		for {
			nbr, w, ok := it.next()
			if !ok {
				break
			}
			if dst[nbr] == 0 {
				dstT = append(dstT, nbr)
			}
			dst[nbr] += push * evidence(w)
		}
	}
	return dstT
}

// Rewrite returns the top-k query rewrites for a concept: the exact
// two-hop Simrank++ score Σ_s W(q→s)·W(s→c), multiplied by the evidence
// weight ev(common) of the number of co-clicked stories, so rewrites
// supported by one shared story rank below rewrites supported by many.
func (g *Graph) Rewrite(concept string, k int) []Scored {
	g.mustFrozen()
	q, ok := g.ConceptID(concept)
	if !ok || k <= 0 {
		return nil
	}
	sc := g.getScratch()
	if g.normF[q] != 0 {
		var sit rowIter
		g.fwd.iterInto(q, &sit)
		for {
			s, w, ok := sit.next()
			if !ok {
				break
			}
			wq := DefaultDecay * evidence(w) / g.normF[q]
			if g.normR[s] == 0 {
				continue
			}
			g.rev.iterInto(s, &sc.it)
			for {
				c, cw, ok := sc.it.next()
				if !ok {
					break
				}
				if sc.conc[c] == 0 && sc.common[c] == 0 {
					sc.concT = append(sc.concT, c)
				}
				sc.conc[c] += wq * DefaultDecay * evidence(cw) / g.normR[s]
				sc.common[c]++
			}
		}
		for _, c := range sc.concT {
			sc.conc[c] *= evidence(sc.common[c])
		}
	}
	res := g.topConcepts(sc, q, k)
	g.putScratch(sc)
	return res
}

// topConcepts ranks the touched concepts (excluding the seed) by score
// descending, node id ascending, and returns a fresh top-k slice that
// shares nothing with the pooled scratch.
//
//kw:fresh
func (g *Graph) topConcepts(sc *queryScratch, seed uint32, k int) []Scored {
	res := make([]Scored, 0, len(sc.concT))
	for _, c := range sc.concT {
		if c == seed || sc.conc[c] == 0 {
			continue
		}
		res = append(res, Scored{ID: c, Score: sc.conc[c]})
	}
	sort.Slice(res, func(i, j int) bool {
		if res[i].Score > res[j].Score {
			return true
		}
		if res[i].Score < res[j].Score {
			return false
		}
		return res[i].ID < res[j].ID
	})
	if len(res) > k {
		res = res[:k:k]
	}
	for i := range res {
		res[i].Name = g.ConceptName(res[i].ID)
	}
	return res
}
