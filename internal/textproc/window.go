package textproc

// Window is a contiguous slice of a document used to localize click analysis.
// The paper partitions large documents into windows of 2500 characters with a
// 500-character overlap "to avoid the positioning bias inherent in working
// with user click data" (§V-A.1).
type Window struct {
	// Start and End are byte offsets into the original document ([Start,End)).
	Start int
	End   int
	// Text is the window's content.
	Text string
	// Index is the window's zero-based position in the document.
	Index int
}

// DefaultWindowSize and DefaultWindowOverlap are the paper's parameters.
const (
	DefaultWindowSize    = 2500
	DefaultWindowOverlap = 500
)

// Partition splits text into windows of at most size bytes where consecutive
// windows overlap by overlap bytes. Window boundaries are moved backwards to
// the nearest whitespace so that tokens are never split; if no whitespace is
// found within the overlap region the hard boundary is used. A document
// shorter than size yields a single window.
func Partition(text string, size, overlap int) []Window {
	if size <= 0 {
		size = DefaultWindowSize
	}
	if overlap < 0 || overlap >= size {
		overlap = DefaultWindowOverlap
		if overlap >= size {
			overlap = size / 5
		}
	}
	if len(text) <= size {
		return []Window{{Start: 0, End: len(text), Text: text, Index: 0}}
	}
	var windows []Window
	step := size - overlap
	start := 0
	for idx := 0; start < len(text); idx++ {
		end := start + size
		if end >= len(text) {
			end = len(text)
		} else {
			end = backToSpace(text, end, start+step)
		}
		windows = append(windows, Window{Start: start, End: end, Text: text[start:end], Index: idx})
		if end == len(text) {
			break
		}
		next := start + step
		next = forwardFromSpace(text, backToSpace(text, next, start))
		if next <= start {
			next = start + step
		}
		start = next
	}
	return windows
}

// backToSpace moves i backwards to just after the nearest whitespace byte,
// but never before floor.
func backToSpace(text string, i, floor int) int {
	for j := i; j > floor; j-- {
		if isSpaceByte(text[j-1]) {
			return j
		}
	}
	return i
}

// forwardFromSpace skips leading whitespace starting at i.
func forwardFromSpace(text string, i int) int {
	for i < len(text) && isSpaceByte(text[i]) {
		i++
	}
	return i
}

func isSpaceByte(b byte) bool {
	return b == ' ' || b == '\t' || b == '\n' || b == '\r'
}
