package textproc

import (
	"strings"
	"testing"
)

func TestStripHTMLMappedMatchesStripHTML(t *testing.T) {
	inputs := []string{
		`<html><body><p>Hello <b>world</b>!</p></body></html>`,
		`<p>visible</p><script>var x = 1;</script><p>more</p>`,
		`before<!-- comment -->after`,
		`Bush &amp; Clinton &lt;debate&gt; &#65;`,
		`plain text no markup`,
		``,
		`<p unclosed`,
		`text <!-- unterminated`,
	}
	for _, in := range inputs {
		want := StripHTML(in)
		got := StripHTMLMapped(in)
		if got.Text != want {
			t.Errorf("StripHTMLMapped text differs from StripHTML for %q:\n got %q\nwant %q", in, got.Text, want)
		}
	}
}

func TestSourceSpanRoundtrip(t *testing.T) {
	html := `<p>The <b>Iraq war</b> continued in <i>Baghdad</i>.</p>`
	res := StripHTMLMapped(html)
	for _, phrase := range []string{"Iraq war", "Baghdad", "continued"} {
		at := strings.Index(res.Text, phrase)
		if at < 0 {
			t.Fatalf("%q not in stripped text %q", phrase, res.Text)
		}
		lo, hi := res.SourceSpan(at, at+len(phrase))
		if html[lo:hi] != phrase {
			t.Errorf("SourceSpan(%q) = html[%d:%d] = %q", phrase, lo, hi, html[lo:hi])
		}
	}
}

func TestSourceSpanAcrossEntities(t *testing.T) {
	html := `A &amp; B corporation`
	res := StripHTMLMapped(html)
	at := strings.Index(res.Text, "corporation")
	lo, hi := res.SourceSpan(at, at+len("corporation"))
	if html[lo:hi] != "corporation" {
		t.Fatalf("entity offset shift: html[%d:%d] = %q", lo, hi, html[lo:hi])
	}
	// The decoded "&" maps back to the start of the entity.
	amp := strings.Index(res.Text, "&")
	if got := res.SourceOffset(amp); html[got] != '&' {
		t.Fatalf("decoded entity maps to %q", html[got])
	}
}

func TestSourceOffsetClamping(t *testing.T) {
	res := StripHTMLMapped("<p>hi</p>")
	if got := res.SourceOffset(-5); got != res.SourceOffset(0) {
		t.Fatalf("negative offset not clamped: %d", got)
	}
	_ = res.SourceOffset(10_000) // must not panic
	lo, hi := res.SourceSpan(3, 3)
	if hi < lo {
		t.Fatalf("empty span inverted: %d > %d", lo, hi)
	}
	empty := StripHTMLMapped("")
	if empty.SourceOffset(0) != 0 {
		t.Fatal("empty input offset")
	}
}

func TestSourceSpanDetectionEndToEnd(t *testing.T) {
	// A realistic flow: strip, find a token span in text, wrap it in the
	// original HTML — the wrapped bytes must be exactly the surface text.
	html := `<div>Email <a href="mailto:x">team@example.org</a> today.</div>`
	res := StripHTMLMapped(html)
	at := strings.Index(res.Text, "team@example.org")
	lo, hi := res.SourceSpan(at, at+len("team@example.org"))
	if html[lo:hi] != "team@example.org" {
		t.Fatalf("html[%d:%d] = %q", lo, hi, html[lo:hi])
	}
	wrapped := html[:lo] + "<span>" + html[lo:hi] + "</span>" + html[hi:]
	if !strings.Contains(wrapped, "<span>team@example.org</span>") {
		t.Fatalf("wrap failed: %s", wrapped)
	}
}
