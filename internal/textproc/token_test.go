package textproc

import (
	"reflect"
	"strings"
	"testing"
	"testing/quick"
)

func TestTokenizeSimple(t *testing.T) {
	tokens := Tokenize("Hello, world!")
	var words []string
	for _, tok := range tokens {
		if tok.Kind == Word {
			words = append(words, tok.Norm)
		}
	}
	if !reflect.DeepEqual(words, []string{"hello", "world"}) {
		t.Fatalf("words = %v", words)
	}
}

func TestTokenizeOffsets(t *testing.T) {
	text := "President Bush's position was similar."
	tokens := Tokenize(text)
	for _, tok := range tokens {
		if got := text[tok.Start:tok.End]; got != tok.Text {
			t.Errorf("offset mismatch: token %q but text slice %q", tok.Text, got)
		}
	}
}

func TestTokenizeApostropheAndHyphen(t *testing.T) {
	tokens := Tokenize("Bush's well-known auto-insurance")
	var norms []string
	for _, tok := range tokens {
		if tok.Kind == Word {
			norms = append(norms, tok.Norm)
		}
	}
	want := []string{"bush's", "well-known", "auto-insurance"}
	if !reflect.DeepEqual(norms, want) {
		t.Fatalf("norms = %v, want %v", norms, want)
	}
}

func TestTokenizeNumbers(t *testing.T) {
	tokens := Tokenize("In 2007, 16549 clicks and 3.5 percent")
	var nums []string
	for _, tok := range tokens {
		if tok.Kind == Number {
			nums = append(nums, tok.Text)
		}
	}
	want := []string{"2007", "16549", "3.5"}
	if !reflect.DeepEqual(nums, want) {
		t.Fatalf("numbers = %v, want %v", nums, want)
	}
}

func TestTokenizeEmpty(t *testing.T) {
	if got := Tokenize(""); len(got) != 0 {
		t.Fatalf("expected no tokens, got %v", got)
	}
	if got := Tokenize("   \n\t "); len(got) != 0 {
		t.Fatalf("expected no tokens for whitespace, got %v", got)
	}
}

func TestTokenizeUnicode(t *testing.T) {
	tokens := Tokenize("naïve café — test")
	var words []string
	for _, tok := range tokens {
		if tok.Kind == Word {
			words = append(words, tok.Norm)
		}
	}
	want := []string{"naïve", "café", "test"}
	if !reflect.DeepEqual(words, want) {
		t.Fatalf("words = %v, want %v", words, want)
	}
}

func TestNormalize(t *testing.T) {
	cases := map[string]string{
		"Hello":     "hello",
		"'quoted'":  "quoted",
		"(Texas)":   "texas",
		"U.S.":      "u.s",
		"...":       "",
		"Obama,":    "obama",
		"MiXeD-":    "mixed",
		"“Clinton”": "clinton",
	}
	for in, want := range cases {
		if got := Normalize(in); got != want {
			t.Errorf("Normalize(%q) = %q, want %q", in, got, want)
		}
	}
}

func TestWords(t *testing.T) {
	got := Words("President Bush, and Sen. Clinton!")
	want := []string{"president", "bush", "and", "sen", "clinton"}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Words = %v, want %v", got, want)
	}
}

func TestContentWords(t *testing.T) {
	got := ContentWords("the position of the president was similar to that of Clinton")
	for _, w := range got {
		if IsStopword(w) {
			t.Errorf("stopword %q survived ContentWords", w)
		}
	}
	joined := strings.Join(got, " ")
	for _, want := range []string{"position", "president", "similar", "clinton"} {
		if !strings.Contains(joined, want) {
			t.Errorf("ContentWords missing %q: %v", want, got)
		}
	}
}

// Property: every token's offsets slice back to its raw text, tokens are
// non-overlapping and ordered.
func TestTokenizeOffsetsProperty(t *testing.T) {
	f := func(s string) bool {
		tokens := Tokenize(s)
		prevEnd := 0
		for _, tok := range tokens {
			if tok.Start < prevEnd || tok.End <= tok.Start || tok.End > len(s) {
				return false
			}
			if s[tok.Start:tok.End] != tok.Text {
				return false
			}
			prevEnd = tok.End
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Fatal(err)
	}
}

// Property: Normalize is idempotent.
func TestNormalizeIdempotent(t *testing.T) {
	f := func(s string) bool {
		once := Normalize(s)
		return Normalize(once) == once
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Fatal(err)
	}
}

func BenchmarkTokenize(b *testing.B) {
	text := strings.Repeat("President Bush's position was similar to that of New York Sen. Clinton, who argued at a debate with Obama last week in Texas. ", 20)
	b.SetBytes(int64(len(text)))
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		Tokenize(text)
	}
}
