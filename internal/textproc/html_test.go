package textproc

import (
	"strings"
	"testing"
)

func TestStripHTMLBasic(t *testing.T) {
	html := `<html><body><p>Hello <b>world</b>!</p></body></html>`
	got := StripHTML(html)
	if !strings.Contains(got, "Hello") || !strings.Contains(got, "world") {
		t.Fatalf("StripHTML lost content: %q", got)
	}
	if strings.ContainsAny(got, "<>") {
		t.Fatalf("StripHTML left tags: %q", got)
	}
}

func TestStripHTMLScriptStyle(t *testing.T) {
	html := `<p>visible</p><script>var x = "hidden";</script><style>.c{color:red}</style><p>also visible</p>`
	got := StripHTML(html)
	if strings.Contains(got, "hidden") || strings.Contains(got, "color") {
		t.Fatalf("script/style content leaked: %q", got)
	}
	if !strings.Contains(got, "visible") || !strings.Contains(got, "also visible") {
		t.Fatalf("visible content lost: %q", got)
	}
}

func TestStripHTMLComments(t *testing.T) {
	got := StripHTML(`before<!-- secret comment -->after`)
	if strings.Contains(got, "secret") {
		t.Fatalf("comment leaked: %q", got)
	}
	if !strings.Contains(got, "before") || !strings.Contains(got, "after") {
		t.Fatalf("content lost: %q", got)
	}
}

func TestStripHTMLEntities(t *testing.T) {
	got := StripHTML("Bush &amp; Clinton &lt;debate&gt; &#65;")
	for _, want := range []string{"Bush & Clinton", "<debate>", "A"} {
		if !strings.Contains(got, want) {
			t.Errorf("missing %q in %q", want, got)
		}
	}
}

func TestStripHTMLParagraphBreaks(t *testing.T) {
	got := StripHTML("<p>one</p><p>two</p>")
	tokens := Tokenize(got)
	if ParagraphCount(tokens) < 2 {
		t.Fatalf("block tags should create paragraph breaks: %q", got)
	}
}

func TestStripHTMLMalformed(t *testing.T) {
	// Unterminated constructs must not panic or loop.
	for _, in := range []string{"<p unclosed", "text <!-- unterminated", "<script>never closed", "&amp"} {
		_ = StripHTML(in)
	}
}

func TestPartitionShortDocument(t *testing.T) {
	ws := Partition("short text", DefaultWindowSize, DefaultWindowOverlap)
	if len(ws) != 1 || ws[0].Text != "short text" {
		t.Fatalf("Partition short = %+v", ws)
	}
}

func TestPartitionOverlap(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 2000; i++ {
		b.WriteString("word ")
	}
	text := b.String() // 10000 bytes
	ws := Partition(text, DefaultWindowSize, DefaultWindowOverlap)
	if len(ws) < 3 {
		t.Fatalf("expected several windows, got %d", len(ws))
	}
	for i, w := range ws {
		if w.Text != text[w.Start:w.End] {
			t.Fatalf("window %d text/offset mismatch", i)
		}
		if i > 0 {
			overlap := ws[i-1].End - w.Start
			if overlap <= 0 {
				t.Errorf("windows %d and %d do not overlap (gap %d)", i-1, i, -overlap)
			}
		}
		if len(w.Text) > DefaultWindowSize {
			t.Errorf("window %d too large: %d", i, len(w.Text))
		}
	}
	if ws[len(ws)-1].End != len(text) {
		t.Fatalf("last window must reach end of text")
	}
}

func TestPartitionNoTokenSplit(t *testing.T) {
	var b strings.Builder
	for i := 0; i < 3000; i++ {
		b.WriteString("abcdefg ")
	}
	text := strings.TrimSpace(b.String())
	for _, w := range Partition(text, 1000, 200) {
		trimmed := strings.TrimSpace(w.Text)
		for _, tok := range strings.Fields(trimmed) {
			if tok != "abcdefg" {
				t.Fatalf("token split across window boundary: %q", tok)
			}
		}
	}
}

func TestPartitionDefaultsOnBadParams(t *testing.T) {
	text := strings.Repeat("x y ", 2000)
	ws := Partition(text, 0, -1)
	if len(ws) == 0 {
		t.Fatal("no windows")
	}
	ws2 := Partition(text, 100, 100) // overlap >= size must be fixed up
	if len(ws2) == 0 {
		t.Fatal("no windows for overlap>=size")
	}
}
