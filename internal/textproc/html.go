package textproc

import "strings"

// StripHTML removes tags, comments, scripts, styles and decodes the common
// HTML entities, returning plain text suitable for the tokenizer. Block-level
// closing tags are replaced with paragraph breaks so downstream boundary
// detection still sees document structure.
func StripHTML(html string) string {
	var b strings.Builder
	b.Grow(len(html))
	i := 0
	for i < len(html) {
		c := html[i]
		if c != '<' {
			i = writeEntityOrByte(&b, html, i)
			continue
		}
		// Comments.
		if strings.HasPrefix(html[i:], "<!--") {
			end := strings.Index(html[i+4:], "-->")
			if end < 0 {
				break
			}
			i += 4 + end + 3
			continue
		}
		// Find the end of the tag.
		end := strings.IndexByte(html[i:], '>')
		if end < 0 {
			break
		}
		tag := html[i+1 : i+end]
		i += end + 1
		name := tagName(tag)
		switch name {
		case "script", "style":
			// Skip to the matching close tag.
			closer := "</" + name
			rest := strings.Index(strings.ToLower(html[i:]), closer)
			if rest < 0 {
				i = len(html)
				continue
			}
			i += rest
			gt := strings.IndexByte(html[i:], '>')
			if gt < 0 {
				i = len(html)
				continue
			}
			i += gt + 1
		case "p", "div", "br", "li", "tr", "h1", "h2", "h3", "h4", "h5", "h6", "blockquote", "section", "article":
			b.WriteString("\n\n")
		default:
			b.WriteByte(' ')
		}
	}
	return b.String()
}

// tagName extracts the lower-case element name from the inside of a tag,
// dropping a leading slash and any attributes.
func tagName(tag string) string {
	tag = strings.TrimSpace(tag)
	tag = strings.TrimPrefix(tag, "/")
	for j := 0; j < len(tag); j++ {
		c := tag[j]
		if c == ' ' || c == '\t' || c == '\n' || c == '/' || c == '>' {
			tag = tag[:j]
			break
		}
	}
	return strings.ToLower(tag)
}

var entities = map[string]string{
	"amp": "&", "lt": "<", "gt": ">", "quot": "\"", "apos": "'",
	"nbsp": " ", "mdash": "—", "ndash": "–", "hellip": "…",
	"lsquo": "'", "rsquo": "'", "ldquo": "\"", "rdquo": "\"",
}

// writeEntityOrByte writes the decoded entity starting at i, or the single
// byte if no entity matches, returning the new index.
func writeEntityOrByte(b *strings.Builder, s string, i int) int {
	if s[i] == '&' {
		semi := strings.IndexByte(s[i:], ';')
		if semi > 1 && semi <= 8 {
			name := s[i+1 : i+semi]
			if rep, ok := entities[name]; ok {
				b.WriteString(rep)
				return i + semi + 1
			}
			if len(name) > 1 && name[0] == '#' {
				// Numeric entity: decode decimal code points in the BMP.
				n := 0
				ok := true
				for _, d := range name[1:] {
					if d < '0' || d > '9' {
						ok = false
						break
					}
					n = n*10 + int(d-'0')
				}
				if ok && n > 0 && n < 0x10000 {
					b.WriteRune(rune(n))
					return i + semi + 1
				}
			}
		}
	}
	b.WriteByte(s[i])
	return i + 1
}
