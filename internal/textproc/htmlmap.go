package textproc

import "strings"

// StripResult is the offset-preserving form of StripHTML: production
// annotation must wrap spans in the *original* markup, so every byte of the
// stripped text remembers where it came from.
type StripResult struct {
	// Text is the stripped plain text (same content StripHTML produces).
	Text string
	// srcOffsets[i] is the byte offset in the original HTML of Text[i].
	// Synthetic bytes (entity expansions, inserted paragraph breaks) map to
	// the offset of the construct that produced them.
	srcOffsets []int
}

// SourceOffset maps an offset in the stripped text back into the original
// HTML. Out-of-range inputs are clamped.
func (r *StripResult) SourceOffset(textOff int) int {
	if len(r.srcOffsets) == 0 {
		return 0
	}
	if textOff < 0 {
		textOff = 0
	}
	if textOff >= len(r.srcOffsets) {
		// One past the end maps one past the last source byte.
		return r.srcOffsets[len(r.srcOffsets)-1] + 1
	}
	return r.srcOffsets[textOff]
}

// SourceSpan maps a [start,end) span of the stripped text to a source span
// covering the same content in the original HTML.
func (r *StripResult) SourceSpan(start, end int) (int, int) {
	lo := r.SourceOffset(start)
	hi := lo
	if end > start {
		hi = r.SourceOffset(end-1) + 1
	}
	if hi < lo {
		hi = lo
	}
	return lo, hi
}

// StripHTMLMapped strips tags like StripHTML while recording, for every
// output byte, the input offset it came from.
func StripHTMLMapped(html string) *StripResult {
	res := &StripResult{srcOffsets: make([]int, 0, len(html))}
	var b strings.Builder
	b.Grow(len(html))
	emit := func(s string, src int) {
		b.WriteString(s)
		for k := 0; k < len(s); k++ {
			res.srcOffsets = append(res.srcOffsets, src)
		}
	}
	i := 0
	for i < len(html) {
		c := html[i]
		if c != '<' {
			next, decoded, raw := decodeEntityAt(html, i)
			if decoded != "" {
				emit(decoded, i)
				i = next
			} else {
				emit(raw, i)
				i = next
			}
			continue
		}
		if strings.HasPrefix(html[i:], "<!--") {
			end := strings.Index(html[i+4:], "-->")
			if end < 0 {
				break
			}
			i += 4 + end + 3
			continue
		}
		end := strings.IndexByte(html[i:], '>')
		if end < 0 {
			break
		}
		tag := html[i+1 : i+end]
		tagStart := i
		i += end + 1
		name := tagName(tag)
		switch name {
		case "script", "style":
			closer := "</" + name
			rest := strings.Index(strings.ToLower(html[i:]), closer)
			if rest < 0 {
				i = len(html)
				continue
			}
			i += rest
			gt := strings.IndexByte(html[i:], '>')
			if gt < 0 {
				i = len(html)
				continue
			}
			i += gt + 1
		case "p", "div", "br", "li", "tr", "h1", "h2", "h3", "h4", "h5", "h6", "blockquote", "section", "article":
			emit("\n\n", tagStart)
		default:
			emit(" ", tagStart)
		}
	}
	res.Text = b.String()
	return res
}

// decodeEntityAt decodes the entity starting at i if any, returning the next
// index, the decoded string (empty when no entity matched) and the raw
// single byte fallback.
func decodeEntityAt(s string, i int) (next int, decoded, raw string) {
	if s[i] == '&' {
		semi := strings.IndexByte(s[i:], ';')
		if semi > 1 && semi <= 8 {
			name := s[i+1 : i+semi]
			if rep, ok := entities[name]; ok {
				return i + semi + 1, rep, ""
			}
			if len(name) > 1 && name[0] == '#' {
				n := 0
				ok := true
				for _, d := range name[1:] {
					if d < '0' || d > '9' {
						ok = false
						break
					}
					n = n*10 + int(d-'0')
				}
				if ok && n > 0 && n < 0x10000 {
					return i + semi + 1, string(rune(n)), ""
				}
			}
		}
	}
	return i + 1, "", s[i : i+1]
}
