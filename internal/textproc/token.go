// Package textproc implements the text pre-processing stages of the
// Contextual Shortcuts platform: HTML stripping, tokenization, sentence and
// paragraph boundary detection, stop-word filtering, and the fixed-size
// character windowing used to counter position bias in click data.
//
// The pipeline mirrors the paper's §II "sequence of pre-processing steps
// [that] handles HTML parsing, tokenization, sentence, and paragraph
// boundary detection".
package textproc

import (
	"strings"
	"unicode"
	"unicode/utf8"
)

// TokenKind classifies a token produced by the tokenizer.
type TokenKind int

const (
	// Word is an alphabetic or alphanumeric token.
	Word TokenKind = iota
	// Number is a token consisting only of digits and digit separators.
	Number
	// Punct is a punctuation token (kept so detectors can see structure).
	Punct
)

// Token is a single lexical unit with its position in the original text.
type Token struct {
	// Text is the raw token as it appears in the input.
	Text string
	// Norm is the normalized form: lower-cased with surrounding
	// punctuation trimmed. Empty for pure punctuation tokens.
	Norm string
	// Kind classifies the token.
	Kind TokenKind
	// Start and End are byte offsets into the original text ([Start,End)).
	Start int
	End   int
	// Sentence is the zero-based index of the sentence containing the token.
	Sentence int
	// Paragraph is the zero-based index of the paragraph containing the token.
	Paragraph int
}

// IsWord reports whether the token is a word token (not number or punctuation).
func (t Token) IsWord() bool { return t.Kind == Word }

// Tokenize splits text into tokens with byte offsets. Words are maximal runs
// of letters, digits, apostrophes and hyphens that begin with a letter or
// digit; everything else that is not whitespace becomes a punctuation token.
// Sentence and Paragraph indexes are filled in by AssignBoundaries, which
// Tokenize calls before returning.
func Tokenize(text string) []Token {
	return TokenizeInto(text, nil)
}

// TokenizeInto is Tokenize appending into buf (pass buf[:0] to reuse a
// scratch buffer across documents; the detection hot path pools these).
// The returned slice aliases buf's backing array when capacity suffices.
func TokenizeInto(text string, buf []Token) []Token {
	tokens := buf
	if cap(tokens) == 0 {
		tokens = make([]Token, 0, len(text)/6+4)
	}
	i := 0
	for i < len(text) {
		r, size := decodeRune(text[i:])
		switch {
		case unicode.IsSpace(r):
			i += size
		case unicode.IsLetter(r) || unicode.IsDigit(r):
			start := i
			i += size
			for i < len(text) {
				r2, s2 := decodeRune(text[i:])
				if unicode.IsLetter(r2) || unicode.IsDigit(r2) || r2 == '\'' || r2 == '-' {
					i += s2
					continue
				}
				// A decimal point inside a number ("3.5") stays in the token.
				if r2 == '.' && i+s2 < len(text) && isASCIIDigit(text[i-1]) && isASCIIDigit(text[i+s2]) {
					i += s2
					continue
				}
				break
			}
			raw := text[start:i]
			// Trim trailing hyphens/apostrophes so "co-" tokenizes as "co".
			trimmed := strings.TrimRight(raw, "'-")
			if trimmed == "" {
				trimmed = raw
			}
			kind := Word
			if isNumeric(trimmed) {
				kind = Number
			}
			tokens = append(tokens, Token{
				Text:  raw,
				Norm:  Normalize(trimmed),
				Kind:  kind,
				Start: start,
				End:   start + len(raw),
			})
		default:
			tokens = append(tokens, Token{
				Text:  text[i : i+size],
				Kind:  Punct,
				Start: i,
				End:   i + size,
			})
			i += size
		}
	}
	AssignBoundaries(text, tokens)
	return tokens
}

// decodeRune decodes the first rune of s with a fast ASCII path. Invalid
// UTF-8 advances one byte (utf8.RuneError with size 1), so the tokenizer
// always makes progress.
func decodeRune(s string) (rune, int) {
	if len(s) == 0 {
		return 0, 0
	}
	if s[0] < 0x80 {
		return rune(s[0]), 1
	}
	return utf8.DecodeRuneInString(s)
}

func isASCIIDigit(b byte) bool { return b >= '0' && b <= '9' }

func isNumeric(s string) bool {
	hasDigit := false
	for _, r := range s {
		if unicode.IsDigit(r) {
			hasDigit = true
			continue
		}
		if r == '.' || r == ',' || r == '-' {
			continue
		}
		return false
	}
	return hasDigit
}

// Normalize lower-cases s and trims surrounding punctuation, matching the
// paper's note that "all characters are lower cased and the surrounding
// punctuation characters are removed".
func Normalize(s string) string {
	s = strings.TrimFunc(s, func(r rune) bool {
		return unicode.IsPunct(r) || unicode.IsSymbol(r)
	})
	return strings.ToLower(s)
}

// Words returns the normalized word tokens of text, dropping punctuation and
// empty normalizations. This is the common entry point for bag-of-words
// consumers (tf·idf, snippets, query processing).
func Words(text string) []string {
	tokens := Tokenize(text)
	words := make([]string, 0, len(tokens))
	for _, t := range tokens {
		if t.Kind != Punct && t.Norm != "" {
			words = append(words, t.Norm)
		}
	}
	return words
}
