package textproc

// stopwords is the stop-word list used throughout the system. The paper
// removes stop-words before building the term vector (§II-B).
var stopwords = map[string]bool{
	"a": true, "an": true, "and": true, "are": true, "as": true, "at": true,
	"be": true, "but": true, "by": true, "for": true, "from": true,
	"has": true, "have": true, "had": true, "he": true, "her": true,
	"hers": true, "him": true, "his": true, "i": true, "in": true,
	"into": true, "is": true, "it": true, "its": true, "me": true,
	"my": true, "of": true, "on": true, "or": true, "our": true,
	"she": true, "so": true, "that": true, "the": true, "their": true,
	"them": true, "then": true, "there": true, "these": true, "they": true,
	"this": true, "those": true, "to": true, "was": true, "we": true,
	"were": true, "what": true, "when": true, "where": true, "which": true,
	"who": true, "whom": true, "why": true, "will": true, "with": true,
	"would": true, "you": true, "your": true, "yours": true, "not": true,
	"no": true, "nor": true, "do": true, "does": true, "did": true,
	"been": true, "being": true, "am": true, "if": true, "than": true,
	"too": true, "very": true, "can": true, "could": true, "should": true,
	"also": true, "about": true, "after": true, "before": true,
	"between": true, "during": true, "over": true, "under": true,
	"up": true, "down": true, "out": true, "off": true, "again": true,
	"more": true, "most": true, "some": true, "such": true, "only": true,
	"own": true, "same": true, "other": true, "each": true, "few": true,
	"all": true, "any": true, "both": true, "how": true, "here": true,
	"said": true, "says": true, "say": true, "one": true, "two": true,
	"new": true, "just": true, "now": true, "while": true, "because": true,
	"through": true, "against": true, "however": true, "since": true,
}

// IsStopword reports whether the normalized word w is a stop-word.
func IsStopword(w string) bool { return stopwords[w] }

// ContentWords returns the normalized word tokens of text with stop-words
// removed.
func ContentWords(text string) []string {
	words := Words(text)
	out := words[:0]
	for _, w := range words {
		if !stopwords[w] {
			out = append(out, w)
		}
	}
	return out
}
