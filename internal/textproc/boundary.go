package textproc

import "strings"

// sentenceAbbrev lists common abbreviations whose trailing period does not
// terminate a sentence.
var sentenceAbbrev = map[string]bool{
	"mr": true, "mrs": true, "ms": true, "dr": true, "prof": true,
	"sen": true, "rep": true, "gov": true, "gen": true, "lt": true,
	"col": true, "sgt": true, "capt": true, "st": true, "mt": true,
	"etc": true, "vs": true, "inc": true, "ltd": true, "corp": true,
	"co": true, "jr": true, "sr": true, "u.s": true, "e.g": true,
	"i.e": true, "jan": true, "feb": true, "mar": true, "apr": true,
	"jun": true, "jul": true, "aug": true, "sep": true, "sept": true,
	"oct": true, "nov": true, "dec": true, "no": true, "vol": true,
}

// AssignBoundaries fills in the Sentence and Paragraph fields of tokens by
// scanning text for sentence terminators (., !, ? followed by whitespace and
// an upper-case letter or end of text, excluding common abbreviations) and
// paragraph breaks (blank lines).
func AssignBoundaries(text string, tokens []Token) {
	sentence, paragraph := 0, 0
	prevEnd := 0
	for i := range tokens {
		// Examine the gap between the previous token and this one for
		// paragraph breaks, and the previous token for sentence terminators.
		gap := text[prevEnd:tokens[i].Start]
		if strings.Count(gap, "\n") >= 2 {
			paragraph++
			sentence++
		} else if i > 0 && endsSentence(tokens[i-1], tokens[i], text) {
			sentence++
		}
		tokens[i].Sentence = sentence
		tokens[i].Paragraph = paragraph
		prevEnd = tokens[i].End
	}
}

// endsSentence reports whether prev terminates a sentence given that next is
// the first token after it.
func endsSentence(prev, next Token, text string) bool {
	if prev.Kind != Punct {
		return false
	}
	switch prev.Text {
	case "!", "?":
		return true
	case ".":
		// A period ends a sentence unless it follows a known abbreviation
		// or a single initial (e.g. "J. Smith").
		if prev.Start > 0 {
			// Find the word immediately before the period.
			j := prev.Start
			k := j
			for k > 0 && isWordByte(text[k-1]) {
				k--
			}
			if periodAbbrev(text, k, j) {
				return false
			}
		}
		// Require the next token to start upper-case or be punctuation that
		// commonly opens sentences (quotes).
		if next.Kind == Word && len(next.Text) > 0 {
			c := next.Text[0]
			return c >= 'A' && c <= 'Z'
		}
		return next.Kind == Number || next.Text == "\"" || next.Text == "'"
	}
	return false
}

// periodAbbrev reports whether the word text[k:j] before a period is a
// single initial or a known abbreviation. The word is ASCII-lowercased
// into a stack buffer so the sentence-boundary pass allocates nothing;
// the string conversion in the map lookup is the compiler's
// no-allocation map-key form. Abbreviations longer than the buffer
// cannot be in the table, so they fall through to "sentence ends".
func periodAbbrev(text string, k, j int) bool {
	n := j - k
	if n == 1 {
		return true
	}
	var buf [16]byte
	if n > len(buf) {
		return false
	}
	for i := 0; i < n; i++ {
		b := text[k+i]
		if b >= 'A' && b <= 'Z' {
			b += 'a' - 'A'
		}
		buf[i] = b
	}
	return sentenceAbbrev[string(buf[:n])]
}

func isWordByte(b byte) bool {
	return b >= 'a' && b <= 'z' || b >= 'A' && b <= 'Z' || b >= '0' && b <= '9' || b == '.'
}

// SentenceCount returns the number of sentences covered by tokens.
func SentenceCount(tokens []Token) int {
	if len(tokens) == 0 {
		return 0
	}
	return tokens[len(tokens)-1].Sentence + 1
}

// ParagraphCount returns the number of paragraphs covered by tokens.
func ParagraphCount(tokens []Token) int {
	if len(tokens) == 0 {
		return 0
	}
	return tokens[len(tokens)-1].Paragraph + 1
}

// Sentences splits text into sentence strings using the same boundary rules
// as AssignBoundaries.
func Sentences(text string) []string {
	tokens := Tokenize(text)
	if len(tokens) == 0 {
		return nil
	}
	var out []string
	start := tokens[0].Start
	cur := 0
	for i := 1; i < len(tokens); i++ {
		if tokens[i].Sentence != cur {
			out = append(out, strings.TrimSpace(text[start:tokens[i-1].End]))
			start = tokens[i].Start
			cur = tokens[i].Sentence
		}
	}
	out = append(out, strings.TrimSpace(text[start:tokens[len(tokens)-1].End]))
	return out
}
