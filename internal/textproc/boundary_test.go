package textproc

import (
	"reflect"
	"testing"
)

func TestSentenceBoundaries(t *testing.T) {
	text := "The war continued. Troops advanced quickly! Was it over? Nobody knew."
	got := Sentences(text)
	want := []string{
		"The war continued.",
		"Troops advanced quickly!",
		"Was it over?",
		"Nobody knew.",
	}
	if !reflect.DeepEqual(got, want) {
		t.Fatalf("Sentences = %q, want %q", got, want)
	}
}

func TestSentenceAbbreviations(t *testing.T) {
	text := "Sen. Clinton met Dr. Smith. They talked."
	got := Sentences(text)
	if len(got) != 2 {
		t.Fatalf("expected 2 sentences, got %d: %q", len(got), got)
	}
	if got[0] != "Sen. Clinton met Dr. Smith." {
		t.Errorf("first sentence = %q", got[0])
	}
}

func TestSentenceInitials(t *testing.T) {
	text := "J. Smith arrived early. He left late."
	got := Sentences(text)
	if len(got) != 2 {
		t.Fatalf("expected 2 sentences, got %d: %q", len(got), got)
	}
}

func TestParagraphBoundaries(t *testing.T) {
	text := "First paragraph here.\n\nSecond paragraph now. Another sentence.\n\nThird."
	tokens := Tokenize(text)
	if got := ParagraphCount(tokens); got != 3 {
		t.Fatalf("ParagraphCount = %d, want 3", got)
	}
	if got := SentenceCount(tokens); got != 4 {
		t.Fatalf("SentenceCount = %d, want 4", got)
	}
}

func TestBoundaryCountsEmpty(t *testing.T) {
	if SentenceCount(nil) != 0 || ParagraphCount(nil) != 0 {
		t.Fatal("empty token slice should have zero counts")
	}
}

func TestTokensCarrySentenceIndex(t *testing.T) {
	tokens := Tokenize("One here. Two there.")
	bySentence := map[int][]string{}
	for _, tok := range tokens {
		if tok.Kind == Word {
			bySentence[tok.Sentence] = append(bySentence[tok.Sentence], tok.Norm)
		}
	}
	if !reflect.DeepEqual(bySentence[0], []string{"one", "here"}) {
		t.Errorf("sentence 0 = %v", bySentence[0])
	}
	if !reflect.DeepEqual(bySentence[1], []string{"two", "there"}) {
		t.Errorf("sentence 1 = %v", bySentence[1])
	}
}
