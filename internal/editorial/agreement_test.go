package editorial

import (
	"math/rand"
	"testing"

	"contextrank/internal/world"
)

func TestKappaPerfectAgreement(t *testing.T) {
	a := []Level{Very, Not, Somewhat, Very}
	if got := Kappa(a, a); got != 1 {
		t.Fatalf("perfect kappa = %v", got)
	}
}

func TestKappaChanceLevel(t *testing.T) {
	// Independent uniform ratings should give kappa near 0.
	rng := rand.New(rand.NewSource(1))
	n := 5000
	a := make([]Level, n)
	b := make([]Level, n)
	for i := range a {
		a[i] = Level(rng.Intn(3))
		b[i] = Level(rng.Intn(3))
	}
	if got := Kappa(a, b); got < -0.05 || got > 0.05 {
		t.Fatalf("chance kappa = %v, want ~0", got)
	}
}

func TestKappaSystematicDisagreement(t *testing.T) {
	a := []Level{Very, Very, Not, Not}
	b := []Level{Not, Not, Very, Very}
	if got := Kappa(a, b); got >= 0 {
		t.Fatalf("opposed raters kappa = %v, want negative", got)
	}
}

func TestKappaDegenerate(t *testing.T) {
	if Kappa(nil, nil) != 0 {
		t.Fatal("empty input")
	}
	if Kappa([]Level{Very}, []Level{Very, Not}) != 0 {
		t.Fatal("length mismatch")
	}
	// Both raters constant and equal: pe == 1 -> defined as 1.
	a := []Level{Very, Very, Very}
	if got := Kappa(a, a); got != 1 {
		t.Fatalf("constant agreement kappa = %v", got)
	}
}

func TestPanelKappaSubstantialAgreement(t *testing.T) {
	// Judges share the ground truth and differ only by noise, so agreement
	// must be well above chance — the precondition for pooling their
	// ratings in Table VI.
	w := world.New(world.Config{Seed: 191, VocabSize: 1200, NumTopics: 8, NumConcepts: 150})
	panel := NewPanel(3, 7)
	rng := rand.New(rand.NewSource(8))
	var concepts []*world.Concept
	var degrees []float64
	for i := range w.Concepts {
		concepts = append(concepts, &w.Concepts[i])
		degrees = append(degrees, rng.Float64())
	}
	ik, rk := PanelKappa(panel, concepts, degrees)
	if ik < 0.4 {
		t.Errorf("interest kappa = %.3f, want substantial agreement", ik)
	}
	if rk < 0.4 {
		t.Errorf("relevance kappa = %.3f, want substantial agreement", rk)
	}
	t.Logf("panel kappa: interest=%.3f relevance=%.3f", ik, rk)
}

func TestPanelKappaDegenerate(t *testing.T) {
	panel := NewPanel(1, 1)
	if ik, rk := PanelKappa(panel, nil, nil); ik != 0 || rk != 0 {
		t.Fatal("single judge panel should return 0")
	}
}

func TestMajorityRate(t *testing.T) {
	panel := NewPanel(5, 3)
	hot := &world.Concept{Interest: 0.95, Quality: 0.9}
	r := panel.MajorityRate(hot, 0.95)
	if r.Interest != Very {
		t.Fatalf("majority interest for a hot concept = %v", r.Interest)
	}
	// A low-quality aside must never be pooled as fully relevant; with
	// judge noise the majority lands on Not (or occasionally Somewhat).
	cold := &world.Concept{Interest: 0.0, Quality: 0.1}
	notCount := 0
	for trial := 0; trial < 20; trial++ {
		r := panel.MajorityRate(cold, 0.0)
		if r.Relevance == Very {
			t.Fatalf("majority rated a low-quality aside fully relevant")
		}
		if r.Relevance == Not {
			notCount++
		}
	}
	if notCount < 12 {
		t.Fatalf("majority chose Not only %d/20 times", notCount)
	}
}
