package editorial

import (
	"testing"

	"contextrank/internal/world"
)

func TestRateLevelsFollowLatents(t *testing.T) {
	j := NewJudge(1)
	hot := &world.Concept{Interest: 0.95, Quality: 0.9}
	cold := &world.Concept{Interest: 0.0, Quality: 0.9}
	lowq := &world.Concept{Interest: 0.5, Quality: 0.05}

	var hotVery, coldNot, relVery, irrNot, lowqNotRel int
	const n = 500
	for i := 0; i < n; i++ {
		if j.Rate(hot, 0.95).Interest == Very {
			hotVery++
		}
		if j.Rate(cold, 0.95).Interest == Not {
			coldNot++
		}
		if j.Rate(hot, 0.95).Relevance == Very {
			relVery++
		}
		if j.Rate(hot, 0.02).Relevance == Not {
			irrNot++
		}
		if r := j.Rate(lowq, 0.95).Relevance; r == Not || r == Somewhat {
			lowqNotRel++
		}
	}
	if hotVery < n*8/10 {
		t.Errorf("hot concept Very-rate %d/%d too low", hotVery, n)
	}
	if coldNot < n*7/10 {
		t.Errorf("cold concept Not-rate %d/%d too low", coldNot, n)
	}
	if relVery < n*7/10 {
		t.Errorf("relevant mention Very-relevant rate %d/%d too low", relVery, n)
	}
	if irrNot < n*6/10 {
		t.Errorf("irrelevant mention Not-relevant rate %d/%d too low", irrNot, n)
	}
	if lowqNotRel < n*7/10 {
		t.Errorf("low-quality concept downgraded-relevance rate %d/%d too low", lowqNotRel, n)
	}
}

func TestCantTellIsRare(t *testing.T) {
	j := NewJudge(2)
	c := &world.Concept{Interest: 0.5, Quality: 0.5}
	cant := 0
	const n = 5000
	for i := 0; i < n; i++ {
		r := j.Rate(c, 0.6)
		if r.Interest == CantTell {
			cant++
		}
		if r.Relevance == CantTell {
			cant++
		}
	}
	if cant > n/100 {
		t.Fatalf("Can't Tell too common: %d/%d", cant, 2*n)
	}
}

func TestTally(t *testing.T) {
	var tally Tally
	tally.Add(Judgement{Interest: Very, Relevance: Not})
	tally.Add(Judgement{Interest: Very, Relevance: Very})
	tally.Add(Judgement{Interest: Not, Relevance: Somewhat})
	if tally.Total != 3 {
		t.Fatalf("Total = %d", tally.Total)
	}
	if got := tally.InterestPct(Very); got < 66 || got > 67 {
		t.Fatalf("InterestPct(Very) = %v", got)
	}
	if got := tally.RelevancePct(Not); got < 33 || got > 34 {
		t.Fatalf("RelevancePct(Not) = %v", got)
	}
	// BadPct = (1 Not-interest + 1 Not-relevance) / 6 ≈ 33.3.
	if got := tally.BadPct(); got < 33 || got > 34 {
		t.Fatalf("BadPct = %v", got)
	}
}

func TestTallyMerge(t *testing.T) {
	var a, b Tally
	a.Add(Judgement{Interest: Very, Relevance: Very})
	b.Add(Judgement{Interest: Not, Relevance: Not})
	a.Merge(b)
	if a.Total != 2 || a.Interest[Very] != 1 || a.Interest[Not] != 1 {
		t.Fatalf("merge broken: %+v", a)
	}
}

func TestTallyEmpty(t *testing.T) {
	var tally Tally
	if tally.InterestPct(Very) != 0 || tally.RelevancePct(Not) != 0 || tally.BadPct() != 0 {
		t.Fatal("empty tally should report zeros")
	}
}

func TestLevelString(t *testing.T) {
	for _, l := range []Level{Very, Somewhat, Not, CantTell} {
		if l.String() == "" {
			t.Fatal("empty level name")
		}
	}
}

func TestJudgeDeterministic(t *testing.T) {
	c := &world.Concept{Interest: 0.5, Quality: 0.5}
	j1, j2 := NewJudge(7), NewJudge(7)
	for i := 0; i < 100; i++ {
		if j1.Rate(c, 0.6) != j2.Rate(c, 0.6) {
			t.Fatal("judges with same seed disagree")
		}
	}
}
