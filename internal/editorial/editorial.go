// Package editorial simulates the paper's editorial evaluation (§V-B): a
// team of expert judges rates each highlighted entity on two independent
// dimensions — interestingness (Very / Somewhat / Definitely Not, "would the
// reader take time out to click?") and relevance (Relevant / Somewhat /
// Not, "could you summarize the text without it?") — each with a rare
// "Can't Tell" escape.
//
// Judges observe the world's latent ground truth through noise: a judge's
// perceived interestingness is the concept's latent Interest plus Gaussian
// error, and perceived relevance follows the mention's ground-truth
// relevance degraded by concept quality. This mirrors what human judges do
// — approximate the same quantity the click model samples from — so the
// Table VI comparison (learned ranking vs. concept-vector top-k) is
// meaningful.
package editorial

import (
	"math/rand"

	"contextrank/internal/world"
)

// Level is one rating choice.
type Level int

const (
	// Very is "Very Interesting or Useful" / "Relevant".
	Very Level = iota
	// Somewhat is the middle rating.
	Somewhat
	// Not is "Definitely Not Interesting" / "Not Relevant".
	Not
	// CantTell is the rare escape choice.
	CantTell
)

// String names the level.
func (l Level) String() string {
	switch l {
	case Very:
		return "very"
	case Somewhat:
		return "somewhat"
	case Not:
		return "not"
	default:
		return "cant-tell"
	}
}

// Judgement is one judge's rating of one entity.
type Judgement struct {
	Interest  Level
	Relevance Level
}

// Judge is a simulated expert with calibrated thresholds and rating noise.
type Judge struct {
	rng *rand.Rand
	// Noise is the σ of the judge's perception error. Default 0.12.
	Noise float64
	// CantTellRate is the probability of a Can't Tell on each dimension
	// ("those rare cases"). Default 0.001.
	CantTellRate float64
}

// NewJudge creates a judge with the given seed.
func NewJudge(seed int64) *Judge {
	return &Judge{rng: rand.New(rand.NewSource(seed)), Noise: 0.12, CantTellRate: 0.001}
}

// Rate judges one mention: the concept plus the mention's graded contextual
// relevance degree in [0,1].
func (j *Judge) Rate(c *world.Concept, degree float64) Judgement {
	var out Judgement

	// Interestingness: latent Interest perceived with noise; judged
	// "independent of their relevance to the meaning of the document".
	perceived := c.Interest + j.Noise*j.rng.NormFloat64()
	switch {
	case j.rng.Float64() < j.CantTellRate:
		out.Interest = CantTell
	case perceived > 0.45:
		out.Interest = Very
	case perceived > 0.15:
		out.Interest = Somewhat
	default:
		out.Interest = Not
	}

	// Relevance: graded ground truth degraded by quality (low-quality
	// phrases cannot "summarize" anything). Mid degrees land in the
	// "Somewhat Relevant" band.
	relValue := (0.1 + 0.85*degree) * (0.25 + 0.75*c.Quality)
	relValue += j.Noise * j.rng.NormFloat64()
	switch {
	case j.rng.Float64() < j.CantTellRate:
		out.Relevance = CantTell
	case relValue > 0.38:
		out.Relevance = Very
	case relValue > 0.16:
		out.Relevance = Somewhat
	default:
		out.Relevance = Not
	}
	return out
}

// Tally aggregates judgements.
type Tally struct {
	Interest  [4]int
	Relevance [4]int
	Total     int
}

// Add accumulates one judgement.
func (t *Tally) Add(j Judgement) {
	t.Interest[j.Interest]++
	t.Relevance[j.Relevance]++
	t.Total++
}

// Merge combines two tallies.
func (t *Tally) Merge(o Tally) {
	for i := range t.Interest {
		t.Interest[i] += o.Interest[i]
		t.Relevance[i] += o.Relevance[i]
	}
	t.Total += o.Total
}

// InterestPct returns the percentage of judgements at the level.
func (t *Tally) InterestPct(l Level) float64 {
	if t.Total == 0 {
		return 0
	}
	return 100 * float64(t.Interest[l]) / float64(t.Total)
}

// RelevancePct returns the percentage of judgements at the level.
func (t *Tally) RelevancePct(l Level) float64 {
	if t.Total == 0 {
		return 0
	}
	return 100 * float64(t.Relevance[l]) / float64(t.Total)
}

// BadPct returns the combined share of Not-Interesting and Not-Relevant
// judgements (the paper reports "the overall average percentage of
// non-interesting and non-relevant terms ... decreased by 45.1%").
func (t *Tally) BadPct() float64 {
	if t.Total == 0 {
		return 0
	}
	return 100 * float64(t.Interest[Not]+t.Relevance[Not]) / float64(2*t.Total)
}
