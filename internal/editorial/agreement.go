package editorial

import "contextrank/internal/world"

// The paper's study uses "a team of expert judges"; any multi-judge study
// needs an agreement check before pooling ratings. This file provides a
// judge panel and Cohen's kappa over their judgements.

// Panel is a set of independent judges.
type Panel struct {
	Judges []*Judge
}

// NewPanel creates n judges with derived seeds.
func NewPanel(n int, seed int64) *Panel {
	p := &Panel{}
	for i := 0; i < n; i++ {
		p.Judges = append(p.Judges, NewJudge(seed+int64(i)*977))
	}
	return p
}

// RateAll has every judge rate the mention, returning one judgement per
// judge.
func (p *Panel) RateAll(c *world.Concept, degree float64) []Judgement {
	out := make([]Judgement, len(p.Judges))
	for i, j := range p.Judges {
		out[i] = j.Rate(c, degree)
	}
	return out
}

// MajorityRate pools the panel with per-dimension majority vote (ties keep
// the more positive level, mirroring editorial adjudication).
func (p *Panel) MajorityRate(c *world.Concept, degree float64) Judgement {
	ratings := p.RateAll(c, degree)
	return Judgement{
		Interest:  majority(ratings, func(j Judgement) Level { return j.Interest }),
		Relevance: majority(ratings, func(j Judgement) Level { return j.Relevance }),
	}
}

func majority(ratings []Judgement, dim func(Judgement) Level) Level {
	var counts [4]int
	for _, r := range ratings {
		counts[dim(r)]++
	}
	best := Very
	for l := Very; l <= CantTell; l++ {
		if counts[l] > counts[best] {
			best = l
		}
	}
	return best
}

// Kappa computes Cohen's kappa between two raters' level sequences
// (parallel slices). Returns 1 for perfect agreement, 0 for chance-level,
// and can be negative for systematic disagreement. Panics-free: mismatched
// or empty input returns 0.
func Kappa(a, b []Level) float64 {
	if len(a) != len(b) || len(a) == 0 {
		return 0
	}
	n := float64(len(a))
	var agree float64
	var ca, cb [4]float64
	for i := range a {
		if a[i] == b[i] {
			agree++
		}
		ca[a[i]]++
		cb[b[i]]++
	}
	po := agree / n
	pe := 0.0
	for l := 0; l < 4; l++ {
		pe += (ca[l] / n) * (cb[l] / n)
	}
	if pe >= 1 {
		return 1
	}
	return (po - pe) / (1 - pe)
}

// PanelKappa measures the mean pairwise kappa of the panel's interest and
// relevance ratings over a set of (concept, degree) items.
func PanelKappa(p *Panel, concepts []*world.Concept, degrees []float64) (interestKappa, relevanceKappa float64) {
	if len(p.Judges) < 2 || len(concepts) == 0 || len(concepts) != len(degrees) {
		return 0, 0
	}
	perJudgeInt := make([][]Level, len(p.Judges))
	perJudgeRel := make([][]Level, len(p.Judges))
	for i := range concepts {
		for ji, j := range p.Judges {
			r := j.Rate(concepts[i], degrees[i])
			perJudgeInt[ji] = append(perJudgeInt[ji], r.Interest)
			perJudgeRel[ji] = append(perJudgeRel[ji], r.Relevance)
		}
	}
	pairs := 0
	for a := 0; a < len(p.Judges); a++ {
		for b := a + 1; b < len(p.Judges); b++ {
			interestKappa += Kappa(perJudgeInt[a], perJudgeInt[b])
			relevanceKappa += Kappa(perJudgeRel[a], perJudgeRel[b])
			pairs++
		}
	}
	return interestKappa / float64(pairs), relevanceKappa / float64(pairs)
}
