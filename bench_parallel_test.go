package contextrank

// Speedup benchmarks for the deterministic parallel pipeline: each runs
// the same work with Workers=1 and with all cores and reports both times
// plus the ratio. TestParallelEqualsSerial proves the outputs are
// bit-identical; these measure what the fan-out buys. The "workers"
// metric records the fan-out width: on a single-core machine it is 1 and
// the speedup is necessarily ~1.0, scaling with cores elsewhere.

import (
	"testing"
	"time"

	"contextrank/internal/core"
	"contextrank/internal/par"
	"contextrank/internal/ranksvm"
)

// BenchmarkParallelBuild measures the full system build (corpus sharding,
// relevance mining, click simulation) serial vs parallel.
func BenchmarkParallelBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		serialCfg := SmallConfig(42)
		serialCfg.Workers = 1
		t0 := time.Now()
		Build(serialCfg)
		serial := time.Since(t0)

		parCfg := SmallConfig(42) // Workers=0: all cores
		t1 := time.Now()
		Build(parCfg)
		parallel := time.Since(t1)

		b.ReportMetric(serial.Seconds()*1000, "serialMs")
		b.ReportMetric(parallel.Seconds()*1000, "parallelMs")
		b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup")
		b.ReportMetric(float64(par.Workers(0)), "workers")
	}
}

// BenchmarkParallelCrossValidate measures 5-fold CV of the ranking SVM
// with serial folds vs folds fanned out across all cores.
func BenchmarkParallelCrossValidate(b *testing.B) {
	s := benchSystem(b)
	groups := s.Dataset(nil)
	for i := 0; i < b.N; i++ {
		m := &core.LearnedMethod{Options: ranksvm.Options{Seed: 42}}

		t0 := time.Now()
		if _, err := core.CrossValidateWorkers(groups, m, 5, 42, 1); err != nil {
			b.Fatal(err)
		}
		serial := time.Since(t0)

		t1 := time.Now()
		if _, err := core.CrossValidateWorkers(groups, m, 5, 42, 0); err != nil {
			b.Fatal(err)
		}
		parallel := time.Since(t1)

		b.ReportMetric(serial.Seconds()*1000, "serialMs")
		b.ReportMetric(parallel.Seconds()*1000, "parallelMs")
		b.ReportMetric(serial.Seconds()/parallel.Seconds(), "speedup")
		b.ReportMetric(float64(par.Workers(0)), "workers")
	}
}
