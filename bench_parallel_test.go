package contextrank

// Speedup benchmarks for the deterministic parallel pipeline: each runs the
// same work at a sweep of worker counts (serial, 4, 8) and reports the
// wall-clock per count plus the speedup over serial. TestParallelEqualsSerial
// proves the outputs are bit-identical; these measure what the fan-out buys.
//
// Reported metrics per benchmark:
//
//	ms-1, ms-4, ms-8    wall-clock milliseconds at Workers=1/4/8
//	speedup-4/speedup-8 ms-1 / ms-N
//	cores               runtime.NumCPU
//	parEff-8            speedup-8 / min(8, cores): parallel efficiency of
//	                    the 8-worker run, machine-independent. Perfect
//	                    scaling is 1.0 on any core count — on a single-core
//	                    machine speedup-8 is necessarily ~1.0 and so is the
//	                    efficiency. make bench floors this at 0.35 (≥2.8×
//	                    at 8 workers on ≥8 cores), the CI teeth of the
//	                    near-linear-build contract (DESIGN.md §10).

import (
	"fmt"
	"math"
	"runtime"
	"testing"
	"time"

	"contextrank/internal/core"
	"contextrank/internal/ranksvm"
)

// benchWorkerCounts is the sweep grid: serial reference, mid fan-out, and
// the guarded width.
var benchWorkerCounts = [3]int{1, 4, 8}

// reportSweep publishes the per-count and derived metrics for one sweep of
// wall-clock measurements aligned with benchWorkerCounts.
func reportSweep(b *testing.B, elapsed [3]time.Duration) {
	b.Helper()
	var ms [3]float64
	for i, d := range elapsed {
		ms[i] = d.Seconds() * 1000
		b.ReportMetric(ms[i], fmt.Sprintf("ms-%d", benchWorkerCounts[i]))
	}
	for i := 1; i < len(ms); i++ {
		b.ReportMetric(ms[0]/ms[i], fmt.Sprintf("speedup-%d", benchWorkerCounts[i]))
	}
	cores := runtime.NumCPU()
	b.ReportMetric(float64(cores), "cores")
	b.ReportMetric((ms[0]/ms[2])/math.Min(8, float64(cores)), "parEff-8")
}

// BenchmarkParallelBuild measures the full system build (corpus sharding,
// bulk parallel indexing, parallel freeze, click simulation) across the
// worker sweep.
func BenchmarkParallelBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		var elapsed [3]time.Duration
		for wi, w := range benchWorkerCounts {
			cfg := SmallConfig(42)
			cfg.Workers = w
			t0 := time.Now()
			Build(cfg)
			elapsed[wi] = time.Since(t0)
		}
		reportSweep(b, elapsed)
	}
}

// BenchmarkParallelCrossValidate measures 5-fold CV of the ranking SVM with
// the folds fanned out across the worker sweep.
func BenchmarkParallelCrossValidate(b *testing.B) {
	s := benchSystem(b)
	groups := s.Dataset(nil)
	for i := 0; i < b.N; i++ {
		var elapsed [3]time.Duration
		for wi, w := range benchWorkerCounts {
			m := &core.LearnedMethod{Options: ranksvm.Options{Seed: 42}}
			t0 := time.Now()
			if _, err := core.CrossValidateWorkers(groups, m, 5, 42, w); err != nil {
				b.Fatal(err)
			}
			elapsed[wi] = time.Since(t0)
		}
		reportSweep(b, elapsed)
	}
}
