GO ?= go

.PHONY: build vet lint lint-fix test race bench chaos verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# kwlint is the project's own go/analysis suite (internal/analysis/...):
# determinism, orderedfanout, seededrand, floatcompare, errsink, hotpath,
# poolalias, lockguard, frozen, ctxflow. It re-executes itself through
# `go vet -vettool`, so results are cached like any vet run. The analyzer
# roster in this comment is checked against kwlint.Analyzers() by
# TestSuiteRosterInSync; update both together.
lint:
	$(GO) run ./cmd/kwlint ./...

# lint-fix applies the analyzers' suggested fixes in place — currently
# the hotpath prealloc rewrite (slice declared without capacity → a
# capacity make). Fixes carry /* TODO: right-size */ markers where the
# correct value is a judgment call, so review the diff and re-run
# `make lint` afterwards.
lint-fix:
	$(GO) run ./cmd/kwlint -fix ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches bit-rot in bench code without
# burning CI minutes on stable timings. The parsed results land in
# BENCH.json (benchmark name -> iterations + metric map); bench.out keeps
# the raw output. Redirect-then-parse (not a pipe) so a failing test run
# fails the target instead of being masked by the parser's exit code.
#
# The hot-path benchmarks are re-run with enough iterations for allocs/op
# to be exact (later result lines for a name overwrite the 1x ones), then
# guarded against BENCH.baseline.json: more than +20% allocs/op on the
# annotate or detect path fails the build (DESIGN.md §10). The offline
# extraction/mining benchmarks guard at a *maximum ratio below one* —
# their baselines record the pre-interning measurements and the ≤0.40
# ratio pins the interned paths' ≥60% allocation reduction, the
# ComposeDoc baseline likewise holds the pre-pooling numbers with a ≤0.10
# cap, Extract guards its packed-key/arena rewrite at ≤0.50 of the
# string-keyed baseline, and FrameworkStemmer pins StemDoc's pooled
# stem-memo path at ≤0.20 of the fresh-map-per-call baseline. The parallel sweep benches are floored on parEff-8 (speedup at 8
# workers divided by usable cores), the machine-independent form of the
# ≥2.8×-on-8-cores scaling contract. The ClickGraphScale guards compare
# against contract values rather than measurements: total-ms 2000 is the
# 2-second build+freeze+10-sweeps wall-clock ceiling and frozen-ratio
# 0.35 the compressed-adjacency bound, both at ratio 1.00. The Ingest
# guards are the live-tier contract: docs-per-sec floored at the 2,000
# docs/sec streaming-ingest bar, and read-p99-ratio (p99 read latency
# during a major merge over frozen-only p99, same corpus) capped at the
# ≤1.3× bound via a neutral 1.0 baseline.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./... > bench.out
	$(GO) test -run=NONE -bench='^BenchmarkAnnotate$$' -benchtime=50x . >> bench.out
	$(GO) test -run=NONE -bench='^BenchmarkDetect$$' -benchtime=100x ./internal/detect >> bench.out
	$(GO) test -run=NONE -bench='^(BenchmarkResultCount|BenchmarkPhraseEval|BenchmarkSearchTopK|BenchmarkIndexSize|BenchmarkPhraseSearch)$$' -benchtime=2000x ./internal/searchsim >> bench.out
	$(GO) test -run=NONE -bench='^BenchmarkBuildFeatures$$' -benchtime=20x . >> bench.out
	$(GO) test -run=NONE -bench='^BenchmarkFields$$' -benchtime=1000x ./internal/features >> bench.out
	$(GO) test -run=NONE -bench='^BenchmarkMineSnippets$$' -benchtime=20x ./internal/relevance >> bench.out
	$(GO) test -run=NONE -bench='^BenchmarkExtract$$' -benchtime=20x ./internal/units >> bench.out
	$(GO) test -run=NONE -bench='^BenchmarkComposeDoc$$' -benchtime=200x ./internal/world >> bench.out
	$(GO) test -run=NONE -bench='^BenchmarkRelated$$' -benchtime=50x ./internal/clickgraph >> bench.out
	$(GO) test -run=NONE -bench='^BenchmarkIngest$$' -benchtime=6000x ./internal/searchsim >> bench.out
	$(GO) test -run=NONE -bench='^BenchmarkFrameworkStemmer$$' -benchtime=20x . >> bench.out
	$(GO) run ./cmd/benchjson -o BENCH.json -baseline BENCH.baseline.json \
		-guard 'BenchmarkAnnotate:allocs/op:1.20' \
		-guard 'BenchmarkDetect:allocs/op:1.20' \
		-guard 'BenchmarkBuildFeatures:allocs/op:1.20' \
		-guard 'BenchmarkPhraseEval:allocs/op:1.50' \
		-guard 'BenchmarkSearchTopK:allocs/op:1.20' \
		-guard 'BenchmarkIndexSize:frozen-bytes:1.05' \
		-guard 'BenchmarkFields:B/op:0.40' \
		-guard 'BenchmarkFields:allocs/op:0.40' \
		-guard 'BenchmarkMineSnippets:B/op:0.40' \
		-guard 'BenchmarkMineSnippets:allocs/op:0.40' \
		-guard 'BenchmarkExtract:allocs/op:0.50' \
		-guard 'BenchmarkFrameworkStemmer:allocs/op:0.20' \
		-guard 'BenchmarkFrameworkStemmer:B/op:0.20' \
		-guard 'BenchmarkComposeDoc:allocs/op:0.10' \
		-guard 'BenchmarkComposeDoc:B/op:0.10' \
		-guard 'BenchmarkRelated:allocs/op:1.20' \
		-guard 'BenchmarkClickGraphScale:frozen-ratio:1.00' \
		-guard 'BenchmarkClickGraphScale:total-ms:1.00' \
		-guard 'BenchmarkIngest:read-p99-ratio:1.30' \
		-floor 'BenchmarkIngest:docs-per-sec:2000' \
		-floor 'BenchmarkParallelBuild:parEff-8:0.35' \
		-floor 'BenchmarkParallelCrossValidate:parEff-8:0.35' \
		-floor 'BenchmarkClickGraphPropagate:parEff-8:0.35' < bench.out

# Deterministic fault injection under -race with a pinned seed: the chaos
# tests derive their expected recovery counters from CHAOS_SEED, so any
# seed must pass — CI runs a small seed matrix. The second line is the
# cluster tier: ring/router/breaker/hedge unit suites plus the
# multi-process differential test (cmd/router + three cmd/serve -shard
# processes byte-compared against a single-process engine under planned
# faults).
CHAOS_SEED ?= 42
chaos:
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -run 'TestChaos|TestOverload|TestShed|TestDeadline|TestQueued|TestGracefulDrain|TestProbe' ./internal/serve/ ./internal/resilience/ ./cmd/serve/
	CHAOS_SEED=$(CHAOS_SEED) $(GO) test -race -count=1 -run 'TestRing|TestRouter|TestBreaker|TestHedge|TestQuota|TestCluster|TestFlap|TestRetry|TestCache' ./internal/cluster/ ./internal/resilience/ ./internal/serve/ ./cmd/router/

# verify is the full CI gate, runnable locally with one command.
verify: build vet lint race bench chaos
