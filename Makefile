GO ?= go

.PHONY: build vet lint test race bench verify

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# kwlint is the project's own go/analysis suite (internal/analysis/...):
# determinism, orderedfanout, seededrand, floatcompare, errsink. It
# re-executes itself through `go vet -vettool`, so results are cached like
# any vet run.
lint:
	$(GO) run ./cmd/kwlint ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./...

# One iteration of every benchmark: catches bit-rot in bench code without
# burning CI minutes on stable timings. The parsed results land in
# BENCH.json (benchmark name -> iterations + metric map); bench.out keeps
# the raw output. Redirect-then-parse (not a pipe) so a failing test run
# fails the target instead of being masked by the parser's exit code.
bench:
	$(GO) test -run=NONE -bench=. -benchtime=1x ./... > bench.out
	$(GO) run ./cmd/benchjson -o BENCH.json < bench.out

# verify is the full CI gate, runnable locally with one command.
verify: build vet lint race bench
