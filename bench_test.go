package contextrank

// One benchmark per table and figure of the paper's evaluation section,
// plus the §VI framework measurements and the DESIGN.md ablations. Each
// benchmark regenerates its experiment against the synthetic world and
// reports the headline quantity as a custom metric (error rates in %, NDCG
// ×1000), so `go test -bench .` reproduces the paper's result shapes.
//
// Absolute wall-clock numbers measure this reproduction, not the paper's
// 2007 testbed; the *metrics* are the comparison target (see
// EXPERIMENTS.md).

import (
	"testing"

	"contextrank/internal/clicksim"
	"contextrank/internal/conceptvec"
	"contextrank/internal/core"
	"contextrank/internal/eval"
	"contextrank/internal/features"
	"contextrank/internal/framework"
	"contextrank/internal/newsgen"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
)

// benchSystem caches the built system across benchmarks (building takes a
// few seconds and every benchmark shares it read-only except the lazily
// mined relevance stores, which are cached internally too).
var benchSys *System

func benchSystem(b *testing.B) *core.System {
	b.Helper()
	if benchSys == nil {
		benchSys = Build(SmallConfig(42))
	}
	return benchSys.Internal()
}

func reportResult(b *testing.B, r core.Result) {
	b.ReportMetric(100*r.WeightedErrorRate, "wErr%")
	b.ReportMetric(100*r.ErrorRate, "plainErr%")
	b.ReportMetric(1000*r.NDCG[1], "ndcg@1e-3")
	b.ReportMetric(1000*r.NDCG[3], "ndcg@3e-3")
}

// BenchmarkTable2_KeywordSummations regenerates Table II: the summations of
// the top-100 relevant-keyword scores, whose spread separates specific
// concepts from low-quality phrases (paper: ~9000+ vs ~1500-2100).
func BenchmarkTable2_KeywordSummations(b *testing.B) {
	s := benchSystem(b)
	for i := 0; i < b.N; i++ {
		top, bottom := s.Table2(3)
		b.ReportMetric(top[0].Summation, "topSum")
		b.ReportMetric(bottom[len(bottom)-1].Summation, "bottomSum")
		b.ReportMetric(top[0].Summation/bottom[len(bottom)-1].Summation, "ratio")
	}
}

// BenchmarkTable3_InterestingnessErrorRates regenerates Table III: weighted
// error rates of the interestingness-feature model and its baselines
// (paper: random 50.01, concept-vector 30.22, all features 23.69).
func BenchmarkTable3_InterestingnessErrorRates(b *testing.B) {
	s := benchSystem(b)
	for i := 0; i < b.N; i++ {
		t3, err := s.Table3(5, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*t3.Random.WeightedErrorRate, "random%")
		b.ReportMetric(100*t3.ConceptVector.WeightedErrorRate, "conceptVec%")
		b.ReportMetric(100*t3.AllFeatures.WeightedErrorRate, "allFeatures%")
		b.ReportMetric(100*t3.Ablations[features.GroupQueryLogs].WeightedErrorRate, "minusQueryLogs%")
	}
}

// BenchmarkTable4_RelevanceErrorRates regenerates Table IV: ranking by the
// pre-mined relevance score only (paper: prisma 32.32, suggestions 31.23,
// snippets 24.86).
func BenchmarkTable4_RelevanceErrorRates(b *testing.B) {
	s := benchSystem(b)
	for i := 0; i < b.N; i++ {
		t4, err := s.Table4(5, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*t4.ByResource[relevance.Snippets].WeightedErrorRate, "snippets%")
		b.ReportMetric(100*t4.ByResource[relevance.Prisma].WeightedErrorRate, "prisma%")
		b.ReportMetric(100*t4.ByResource[relevance.Suggestions].WeightedErrorRate, "suggestions%")
	}
}

// BenchmarkTable5_CombinedErrorRates regenerates Table V: all
// interestingness features plus the snippet relevance score (paper:
// combined 18.66 vs interestingness-only 23.69 vs baseline 30.22).
func BenchmarkTable5_CombinedErrorRates(b *testing.B) {
	s := benchSystem(b)
	for i := 0; i < b.N; i++ {
		t5, err := s.Table5(5, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*t5.Combined.WeightedErrorRate, "combined%")
		b.ReportMetric(100*t5.BestInterest.WeightedErrorRate, "interest%")
		b.ReportMetric(100*t5.ConceptVector.WeightedErrorRate, "conceptVec%")
	}
}

// BenchmarkFigure1_NDCGInterestingness regenerates Figure 1: NDCG@{1,2,3}
// for random / concept-vector / interestingness model.
func BenchmarkFigure1_NDCGInterestingness(b *testing.B) {
	s := benchSystem(b)
	for i := 0; i < b.N; i++ {
		t3, err := s.Table3(5, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(1000*t3.AllFeatures.NDCG[1], "model@1e-3")
		b.ReportMetric(1000*t3.AllFeatures.NDCG[3], "model@3e-3")
		b.ReportMetric(1000*t3.Random.NDCG[1], "random@1e-3")
	}
}

// BenchmarkFigure2_NDCGRelevance regenerates Figure 2: NDCG@{1,2,3} for
// relevance-score-only ranking per mining resource.
func BenchmarkFigure2_NDCGRelevance(b *testing.B) {
	s := benchSystem(b)
	for i := 0; i < b.N; i++ {
		t4, err := s.Table4(5, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(1000*t4.ByResource[relevance.Snippets].NDCG[1], "snippets@1e-3")
		b.ReportMetric(1000*t4.ByResource[relevance.Prisma].NDCG[1], "prisma@1e-3")
	}
}

// BenchmarkFigure3_NDCGCombined regenerates Figure 3: NDCG@{1,2,3} with all
// features.
func BenchmarkFigure3_NDCGCombined(b *testing.B) {
	s := benchSystem(b)
	for i := 0; i < b.N; i++ {
		t5, err := s.Table5(5, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(1000*t5.Combined.NDCG[1], "combined@1e-3")
		b.ReportMetric(1000*t5.Combined.NDCG[3], "combined@3e-3")
	}
}

// BenchmarkTable6_EditorialStudy regenerates the §V-B editorial study
// (paper: Very-Interesting 32.6→45.4 on news; bad terms 23.3%→12.8%).
func BenchmarkTable6_EditorialStudy(b *testing.B) {
	s := benchSystem(b)
	for i := 0; i < b.N; i++ {
		t6, err := s.Table6(core.EditorialConfig{Seed: 42, NewsDocs: 100, AnswersDocs: 200})
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(t6.NewsRanked.InterestPct(0), "newsVeryInt%")
		b.ReportMetric(t6.NewsCV.InterestPct(0), "newsVeryIntCV%")
		b.ReportMetric((t6.NewsRanked.BadPct()+t6.AnswersRanked.BadPct())/2, "badRanked%")
		b.ReportMetric((t6.NewsCV.BadPct()+t6.AnswersCV.BadPct())/2, "badCV%")
	}
}

// BenchmarkRealWorld_ProductionCTR regenerates §V-C: annotating only the
// top-3 ranked entities (paper: views −52.5%, clicks −2.0%, CTR +100.1%).
func BenchmarkRealWorld_ProductionCTR(b *testing.B) {
	s := benchSystem(b)
	for i := 0; i < b.N; i++ {
		p, err := s.ProductionExperiment(3, 200, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(p.ViewsChangePct(), "views%")
		b.ReportMetric(p.ClicksChangePct(), "clicks%")
		b.ReportMetric(p.CTRChangePct(), "ctr%")
	}
}

// buildRuntime assembles the §VI production runtime for the framework
// benchmarks.
func buildRuntime(b *testing.B) (*framework.Runtime, []newsgen.Story) {
	b.Helper()
	s := benchSystem(b)
	learned := &core.LearnedMethod{UseRelevance: true, Resource: relevance.Snippets, Options: ranksvm.Options{Seed: 42}}
	if err := learned.Fit(s.Dataset([]relevance.Resource{relevance.Snippets})); err != nil {
		b.Fatal(err)
	}
	names := make([]string, len(s.World.Concepts))
	for i := range s.World.Concepts {
		names[i] = s.World.Concepts[i].Name
	}
	table := framework.BuildInterestTable(names, func(n string) features.Fields { return s.Fields(n) })
	packs := framework.BuildKeywordPacks(s.RelevanceStore(relevance.Snippets))
	rt := framework.NewRuntime(s.Pipeline, table, packs, learned.Model())
	docs := newsgen.Generate(s.World, newsgen.Config{Seed: 4242, NumStories: 50, MinSentences: 12, MaxSentences: 24})
	return rt, docs
}

// BenchmarkFrameworkRanker measures the online annotate path (§VI: the
// paper's ranker processed 2.4 MB/s on 2007 hardware).
func BenchmarkFrameworkRanker(b *testing.B) {
	rt, docs := buildRuntime(b)
	total := 0
	for _, d := range docs {
		total += len(d.Text)
	}
	b.SetBytes(int64(total))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := range docs {
			rt.Annotate(docs[d].Text, 3)
		}
	}
}

// BenchmarkAnnotate measures the full online annotate path per document —
// the detection + ranking hot path whose allocs/op the performance
// contract (DESIGN.md §10) guards in CI. Unlike BenchmarkFrameworkRanker
// (which reports MB/s over a corpus sweep), this benchmark reports per-call
// cost so allocation regressions are visible directly.
func BenchmarkAnnotate(b *testing.B) {
	rt, docs := buildRuntime(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rt.Annotate(docs[i%len(docs)].Text, 3)
	}
}

// BenchmarkFrameworkStemmer measures the stemmer stage alone (§VI: paper
// 7.9 MB/s).
func BenchmarkFrameworkStemmer(b *testing.B) {
	rt, docs := buildRuntime(b)
	total := 0
	for _, d := range docs {
		total += len(d.Text)
	}
	b.SetBytes(int64(total))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for d := range docs {
			rt.StemDoc(docs[d].Text)
		}
	}
}

// BenchmarkFrameworkGolomb compares the keyword-pack footprint raw vs
// Golomb-compressed (DESIGN.md ablation 6).
func BenchmarkFrameworkGolomb(b *testing.B) {
	s := benchSystem(b)
	packs := framework.BuildKeywordPacks(s.RelevanceStore(relevance.Snippets))
	names := make([]string, 0, len(s.World.Concepts))
	for i := range s.World.Concepts {
		names = append(names, s.World.Concepts[i].Name)
	}
	for i := 0; i < b.N; i++ {
		compressed := 0
		for _, n := range names {
			compressed += packs.Compress(n).Bytes()
		}
		b.ReportMetric(float64(packs.TotalBytes()), "rawBytes")
		b.ReportMetric(float64(compressed), "golombBytes")
		b.ReportMetric(100*float64(compressed)/float64(packs.TotalBytes()), "ratio%")
	}
}

// --- DESIGN.md ablation benches ---

// BenchmarkAblationWeightedVsPlain compares the weighted and unweighted
// error-rate metrics on the same baseline ranking (DESIGN.md ablation 1):
// the weighted metric credits the baseline for getting the *important*
// pairs right.
func BenchmarkAblationWeightedVsPlain(b *testing.B) {
	s := benchSystem(b)
	groups := s.Dataset(nil)
	m := &core.ConceptVectorMethod{Scorer: s.Baseline}
	for i := 0; i < b.N; i++ {
		res, err := core.CrossValidate(groups, m, 5, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*res.WeightedErrorRate, "weighted%")
		b.ReportMetric(100*res.ErrorRate, "plain%")
	}
}

// BenchmarkAblationBubbleUp compares the concept-vector baseline with and
// without the multi-term bubble-up step (DESIGN.md ablation 2).
func BenchmarkAblationBubbleUp(b *testing.B) {
	s := benchSystem(b)
	groups := s.Dataset(nil)
	with := &core.ConceptVectorMethod{Scorer: s.Baseline}
	without := &core.ConceptVectorMethod{Scorer: conceptvec.New(
		s.Engine.Dictionary(), s.Units, conceptvec.Options{DisableBubbleUp: true})}
	for i := 0; i < b.N; i++ {
		rw, err := core.CrossValidate(groups, with, 5, 42)
		if err != nil {
			b.Fatal(err)
		}
		ro, err := core.CrossValidate(groups, without, 5, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rw.WeightedErrorRate, "withBubbleUp%")
		b.ReportMetric(100*ro.WeightedErrorRate, "noBubbleUp%")
	}
}

// BenchmarkAblationWindowing compares evaluation on 2500/500 windows vs
// whole stories (DESIGN.md ablation 3: windowing fights position bias).
func BenchmarkAblationWindowing(b *testing.B) {
	s := benchSystem(b)
	m := &core.LearnedMethod{Options: ranksvm.Options{Seed: 42}}
	windowed := s.Dataset(nil)

	// Whole-story groups: one group per cleaned report.
	whole := clicksim.Windows(s.Cleaned, 1<<30, 0)
	wholeGroups := make([]core.Group, 0, len(whole))
	for gi, wg := range whole {
		g := core.Group{ID: gi, StoryID: wg.StoryID, Text: wg.Text, Views: wg.Views}
		for _, e := range wg.Entities {
			g.Examples = append(g.Examples, core.Example{
				Concept: e.Concept, CTR: e.CTR(wg.Views), Clicks: e.Clicks,
				Views: wg.Views, Position: e.Position, Relevant: e.Relevant,
				Degree: e.Degree, Fields: s.Fields(e.Concept.Name),
			})
		}
		wholeGroups = append(wholeGroups, g)
	}

	for i := 0; i < b.N; i++ {
		rw, err := core.CrossValidate(windowed, m, 5, 42)
		if err != nil {
			b.Fatal(err)
		}
		ro, err := core.CrossValidate(wholeGroups, m, 5, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*rw.WeightedErrorRate, "windowed%")
		b.ReportMetric(100*ro.WeightedErrorRate, "wholeStory%")
	}
}

// BenchmarkAblationQuantization measures the ranking disagreement introduced
// by 2-byte field quantization (DESIGN.md ablation 7): identical scores on
// dequantized vs raw fields mean the 18-byte layout is lossless in practice.
func BenchmarkAblationQuantization(b *testing.B) {
	s := benchSystem(b)
	names := make([]string, len(s.World.Concepts))
	for i := range s.World.Concepts {
		names[i] = s.World.Concepts[i].Name
	}
	table := framework.BuildInterestTable(names, func(n string) features.Fields { return s.Fields(n) })
	for i := 0; i < b.N; i++ {
		maxRelErr := 0.0
		for _, n := range names {
			raw := s.Fields(n)
			q, _ := table.Fields(n)
			re := relErr(raw.FreqExact, q.FreqExact)
			if re > maxRelErr {
				maxRelErr = re
			}
		}
		b.ReportMetric(100*maxRelErr, "maxFieldErr%")
	}
}

func relErr(a, bb float64) float64 {
	if a == 0 {
		return 0
	}
	d := a - bb
	if d < 0 {
		d = -d
	}
	return d / a
}

// BenchmarkMetricNDCG exercises the NDCG implementation itself.
func BenchmarkMetricNDCG(b *testing.B) {
	pred := []float64{5, 3, 4, 1, 2, 6, 0, 7}
	truth := []float64{0.1, 0.05, 0.2, 0.01, 0.02, 0.15, 0.0, 0.3}
	judge := func(ctr float64) float64 { return ctr * 10 }
	b.ReportAllocs()
	for i := 0; i < b.N; i++ {
		eval.NDCG(pred, truth, 3, judge)
	}
}

// BenchmarkBuildFeatures measures the offline batch feature extraction over
// the full concept inventory — the contextrank.Build stage that hammers
// ResultCount and the query-log phrase scan. Guarded in CI against
// BENCH.baseline.json (DESIGN.md §10).
func BenchmarkBuildFeatures(b *testing.B) {
	s := benchSystem(b)
	names := make([]string, len(s.World.Concepts))
	for i := range s.World.Concepts {
		names[i] = s.World.Concepts[i].Name
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Extractor.BatchFields(names, 1)
	}
}
