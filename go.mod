module contextrank

go 1.22
