package contextrank

// Benchmarks for the extension subsystems (§IV-A/§IV-C/§VIII discussions
// and the §VI memory optimizations): these complement the per-table
// benchmarks in bench_test.go.

import (
	"bytes"
	"testing"

	"contextrank/internal/core"
	"contextrank/internal/framework"
	"contextrank/internal/online"
	"contextrank/internal/personal"
	"contextrank/internal/querylog"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
)

// BenchmarkExtensionFeatureSelection regenerates the §IV-A negative result:
// the eliminated candidate features do not move the error materially.
func BenchmarkExtensionFeatureSelection(b *testing.B) {
	s := benchSystem(b)
	for i := 0; i < b.N; i++ {
		selected, withEliminated, err := s.FeatureSelection(3, 42)
		if err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(100*selected.WeightedErrorRate, "selected%")
		b.ReportMetric(100*withEliminated.WeightedErrorRate, "withEliminated%")
	}
}

// BenchmarkExtensionSenses regenerates the §IV-C sense-clustering coverage
// boost for ambiguous concepts.
func BenchmarkExtensionSenses(b *testing.B) {
	s := benchSystem(b)
	for i := 0; i < b.N; i++ {
		global, sense, n := s.SenseExperiment(2)
		if n == 0 {
			b.Skip("no ambiguous mentions")
		}
		b.ReportMetric(1000*global, "globalCov-e3")
		b.ReportMetric(1000*sense, "senseCov-e3")
	}
}

// BenchmarkExtensionOnlineTracker measures the per-tick cost of the §VIII
// decayed-CTR tracker at production-like concept counts.
func BenchmarkExtensionOnlineTracker(b *testing.B) {
	tr := online.NewTracker(online.Config{})
	events := make([]online.Event, 500)
	for i := range events {
		events[i] = online.Event{Concept: "c" + string(rune('a'+i%26)) + string(rune('a'+i/26%26)), Views: 50, Clicks: 2}
	}
	for _, e := range events {
		tr.SetBaseline(e.Concept, 0.03)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		tr.Tick(events)
	}
}

// BenchmarkExtensionPersonalAffinity measures profile affinity lookups (the
// per-impression cost of personalization).
func BenchmarkExtensionPersonalAffinity(b *testing.B) {
	s := benchSystem(b)
	p := personal.NewProfile(s.World.Config.NumTopics)
	for i := range s.World.Concepts {
		p.Observe(&s.World.Concepts[i], i%13 == 0)
	}
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		p.Affinity(&s.World.Concepts[i%len(s.World.Concepts)])
	}
}

// BenchmarkExtensionTrendSeries measures multi-week trend mining.
func BenchmarkExtensionTrendSeries(b *testing.B) {
	s := benchSystem(b)
	names := make([]string, len(s.World.Concepts))
	for i := range s.World.Concepts {
		names[i] = s.World.Concepts[i].Name
	}
	series, _ := querylog.GenerateSeries(s.World, querylog.SeriesConfig{Seed: 9, Weeks: 4})
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		series.Spiking(names, 10)
	}
}

// BenchmarkExtensionBundleSaveLoad measures offline-artifact persistence.
func BenchmarkExtensionBundleSaveLoad(b *testing.B) {
	s := benchSystem(b)
	learned := &core.LearnedMethod{UseRelevance: true, Resource: relevance.Snippets, Options: ranksvm.Options{Seed: 42}}
	if err := learned.Fit(s.Dataset([]relevance.Resource{relevance.Snippets})); err != nil {
		b.Fatal(err)
	}
	names := make([]string, len(s.World.Concepts))
	for i := range s.World.Concepts {
		names[i] = s.World.Concepts[i].Name
	}
	bundle := &framework.Bundle{
		Interest: framework.BuildInterestTable(names, s.Fields),
		Packs:    framework.BuildKeywordPacks(s.RelevanceStore(relevance.Snippets)),
		Model:    learned.Model(),
	}
	var buf bytes.Buffer
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		buf.Reset()
		if err := bundle.Save(&buf); err != nil {
			b.Fatal(err)
		}
		if _, err := framework.LoadBundle(bytes.NewReader(buf.Bytes())); err != nil {
			b.Fatal(err)
		}
		b.ReportMetric(float64(buf.Len()), "bundleBytes")
	}
}

// BenchmarkExtensionSharedPacks compares the §VI shared-TID-pool footprint
// against raw and plain-Golomb packs on the real mined store.
func BenchmarkExtensionSharedPacks(b *testing.B) {
	s := benchSystem(b)
	kp := framework.BuildKeywordPacks(s.RelevanceStore(relevance.Snippets))
	for i := 0; i < b.N; i++ {
		sp := framework.BuildSharedPacks(kp, 32)
		b.ReportMetric(float64(kp.TotalBytes()), "rawBytes")
		b.ReportMetric(float64(sp.TotalBytes()), "sharedBytes")
	}
}
