// Quickstart: build the synthetic world, train the contextual keyword
// ranker, and annotate a document — the three calls every consumer of the
// library makes.
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"contextrank"
	"contextrank/internal/world"
)

func main() {
	seed := flag.Int64("seed", 7, "seed for the document-composition rng")
	flag.Parse()

	// 1. Build the system: synthetic world, query log, search index,
	// dictionaries, news traffic and click data. Deterministic in the seed.
	sys := contextrank.Build(contextrank.SmallConfig(42))
	stats := sys.DataStats()
	fmt.Printf("built world with %d concepts; click corpus: %d stories, %d clicks\n",
		len(sys.Concepts()), stats.CleanStories, stats.Clicks)

	// 2. Train the ranker: offline feature mining + ranking SVM + packed
	// production tables.
	ranker, err := sys.TrainRanker()
	if err != nil {
		log.Fatal(err)
	}
	interestBytes, keywordBytes := ranker.MemoryFootprint()
	fmt.Printf("ranker ready: %d B interestingness table, %d B keyword packs\n\n",
		interestBytes, keywordBytes)

	// 3. Annotate a document. We compose one from the world so it contains
	// known concepts; any text works.
	w := sys.Internal().World
	var subject *world.Concept
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if c.Topic >= 0 && c.Interest > 0.6 && len(c.Terms) >= 2 {
			subject = c
			break
		}
	}
	doc, _ := w.ComposeDoc(world.ComposeOptions{Topic: subject.Topic, Sentences: 10},
		[]world.Mention{{Concept: subject, Relevant: true, Repeat: 2}},
		rand.New(rand.NewSource(*seed)))
	doc += " Send tips to tips@example.org."

	fmt.Println("document:")
	fmt.Println(" ", doc[:min(200, len(doc))], "...")
	fmt.Println("\ntop annotations:")
	for i, a := range ranker.Annotate(doc, 3) {
		fmt.Printf("%2d. %-30q kind=%-8s score=%.3f\n",
			i+1, a.Detection.Text, a.Detection.Kind, a.Score)
	}
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
