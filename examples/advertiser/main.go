// Advertiser: the contextual-advertising application from the paper's
// introduction. An ad system matches ads against a page's keywords; reducing
// the page to a handful of *key* concepts cuts matching latency without
// losing relevance (the paper cites Anagnostopoulos et al., CIKM 2007).
//
// The example extracts ad keywords from pages two ways — every detected
// concept vs. the ranker's top-3 — and measures how well each keyword set
// targets the page: an ad inventory is simulated as concept-keyed campaigns,
// and a match is "on target" when the campaign's concept is genuinely
// relevant to the page.
package main

import (
	"fmt"
	"log"

	"contextrank"
	"contextrank/internal/newsgen"
	"contextrank/internal/world"
)

func main() {
	sys := contextrank.Build(contextrank.SmallConfig(42))
	ranker, err := sys.TrainRanker()
	if err != nil {
		log.Fatal(err)
	}
	inner := sys.Internal()

	pages := newsgen.Generate(inner.World, newsgen.Config{Seed: 555, NumStories: 60})

	var allKeywords, allOnTarget, topKeywords, topOnTarget int
	for pi := range pages {
		page := &pages[pi]
		truth := make(map[string]bool, len(page.Mentions))
		for _, m := range page.Mentions {
			truth[m.Concept.Name] = m.Relevant && !m.Concept.LowQuality()
		}

		// Naive: every detected concept becomes an ad keyword.
		for _, d := range inner.Pipeline.Detect(page.Text) {
			if _, known := truth[d.Norm]; known {
				allKeywords++
				if truth[d.Norm] {
					allOnTarget++
				}
			}
		}
		// Ranked: only the top-3 key concepts.
		for _, kw := range ranker.Keywords(page.Text, 3) {
			if _, known := truth[kw]; known {
				topKeywords++
				if truth[kw] {
					topOnTarget++
				}
			}
		}
	}

	fmt.Printf("pages: %d\n", len(pages))
	fmt.Printf("naive keyword set:  %4d keywords, %5.1f%% on-target, ~%.1f keywords/page to match ads against\n",
		allKeywords, pct(allOnTarget, allKeywords), float64(allKeywords)/float64(len(pages)))
	fmt.Printf("ranked top-3 set:   %4d keywords, %5.1f%% on-target, ~%.1f keywords/page to match ads against\n",
		topKeywords, pct(topOnTarget, topKeywords), float64(topKeywords)/float64(len(pages)))
	fmt.Println("\nsample campaign match for one page:")
	sample(inner.World, ranker, &pages[0])
}

func pct(a, b int) float64 {
	if b == 0 {
		return 0
	}
	return 100 * float64(a) / float64(b)
}

func sample(w *world.World, ranker *contextrank.Ranker, page *newsgen.Story) {
	for _, kw := range ranker.Keywords(page.Text, 3) {
		c := w.ConceptByName(kw)
		if c == nil {
			continue
		}
		fmt.Printf("  keyword %-30q -> campaign bucket %q (interest %.2f)\n",
			kw, c.Type, c.Interest)
	}
}
