// Trending: the paper's §IV-C and §VIII extensions working together. A
// multi-week query-log series reveals which concepts are spiking
// (week-over-week trend features), and the online CTR tracker re-ranks a
// live document the moment a spike shows up in the click stream — "react
// intelligently to world events in real time".
package main

import (
	"flag"
	"fmt"
	"log"
	"math/rand"

	"contextrank"
	"contextrank/internal/core"
	"contextrank/internal/online"
	"contextrank/internal/querylog"
	"contextrank/internal/world"
)

func main() {
	seed := flag.Int64("seed", 42, "base seed; the series and composition rngs use fixed offsets of it")
	flag.Parse()

	sys := contextrank.Build(contextrank.SmallConfig(*seed))
	inner := sys.Internal()
	ranker, err := sys.TrainRanker()
	if err != nil {
		log.Fatal(err)
	}

	// Part 1: trend mining over a six-week query-log series.
	series, trueSpikes := querylog.GenerateSeries(inner.World, querylog.SeriesConfig{
		Seed: *seed * 101, Weeks: 6, SpikeProb: 0.02,
	})
	names := make([]string, len(inner.World.Concepts))
	for i := range inner.World.Concepts {
		names[i] = inner.World.Concepts[i].Name
	}
	fmt.Printf("query-log series: %d weeks; ground-truth spikes this week: %d\n",
		len(series.Weeks), len(trueSpikes))
	fmt.Println("top trending concepts by week-over-week query growth:")
	for _, name := range series.Spiking(names, 5) {
		fmt.Printf("  %-40q trend=%+.2f\n", name, series.TrendFeature(name))
	}

	// Part 2: live re-ranking. Compose a story that mentions a spiking
	// concept next to an evergreen hot one, then stream a click spike.
	var spiker *world.Concept
	for _, name := range series.Spiking(names, 10) {
		c := inner.World.ConceptByName(name)
		if c != nil && c.Topic >= 0 && !c.LowQuality() && inner.Units.Score(c.Name) >= 0.35 {
			spiker = c
			break
		}
	}
	if spiker == nil {
		fmt.Println("no detectable spiking concept this seed")
		return
	}
	var evergreen *world.Concept
	for i := range inner.World.Concepts {
		c := &inner.World.Concepts[i]
		if c.Interest > 0.8 && c.ID != spiker.ID && inner.Units.Score(c.Name) >= 0.35 {
			evergreen = c
			break
		}
	}
	rng := rand.New(rand.NewSource(*seed + 7))
	doc, _ := inner.World.ComposeDoc(world.ComposeOptions{Topic: spiker.Topic, Sentences: 12},
		[]world.Mention{
			{Concept: spiker, Relevant: true, Repeat: 2},
			{Concept: evergreen, Relevant: evergreen.Topic == spiker.Topic},
		}, rng)

	tracker := online.NewTracker(online.Config{HalfLifeTicks: 4, MinViews: 50, MaxBoost: 6})
	tracker.SetBaseline(spiker.Name, 0.005)
	adj := online.NewAdjuster(ranker.Runtime(), tracker, 3)

	result := core.RunBreakingNews(adj, tracker, spiker.Name, doc, 99)
	fmt.Printf("\nbreaking-news re-ranking for %q (latent interest %.2f):\n", spiker.Name, spiker.Interest)
	fmt.Printf("  rank before the click spike: %d\n", result.StaticRank)
	fmt.Printf("  rank during the spike:       %d\n", result.BoostedRank)
	fmt.Printf("  rank after the spike decays: %d\n", result.DecayedRank)
}
