// Summarizer: the text-summarization application from the paper's
// introduction — search engines show snippets per result, and "providing
// effective summaries via key concepts can increase the overall user
// satisfaction", especially on small screens.
//
// The example summarizes documents as their top-k key concepts and evaluates
// summary quality against the ground truth: a good summary names the
// concepts the document is actually about (relevant, non-low-quality) and
// skips asides. It compares the learned ranker with a tf·idf-style baseline
// (the concept-vector score).
package main

import (
	"fmt"
	"log"
	"sort"

	"contextrank"
	"contextrank/internal/core"
	"contextrank/internal/detect"
	"contextrank/internal/newsgen"
)

func main() {
	sys := contextrank.Build(contextrank.SmallConfig(42))
	ranker, err := sys.TrainRanker()
	if err != nil {
		log.Fatal(err)
	}
	inner := sys.Internal()

	docs := newsgen.Generate(inner.World, newsgen.Config{Seed: 777, NumStories: 80})
	const k = 3

	var learnedGood, learnedTotal, baselineGood, baselineTotal int
	for di := range docs {
		doc := &docs[di]
		relevant := make(map[string]bool)
		for _, m := range doc.Mentions {
			if m.Relevant && !m.Concept.LowQuality() {
				relevant[m.Concept.Name] = true
			}
		}

		for _, kw := range ranker.Keywords(doc.Text, k) {
			learnedTotal++
			if relevant[kw] {
				learnedGood++
			}
		}
		for _, kw := range baselineSummary(inner, doc.Text, k) {
			baselineTotal++
			if relevant[kw] {
				baselineGood++
			}
		}
	}

	fmt.Printf("summaries of %d documents at k=%d key concepts each:\n", len(docs), k)
	fmt.Printf("  concept-vector baseline: %5.1f%% of summary slots name a core concept\n",
		100*float64(baselineGood)/float64(baselineTotal))
	fmt.Printf("  learned ranker:          %5.1f%% of summary slots name a core concept\n",
		100*float64(learnedGood)/float64(learnedTotal))

	fmt.Println("\nexample summary:")
	doc := &docs[3]
	fmt.Printf("  document (%d bytes): %.120s...\n", len(doc.Text), doc.Text)
	fmt.Printf("  summary: %v\n", ranker.Keywords(doc.Text, k))
}

// baselineSummary ranks the document's detected concepts by concept-vector
// score (the production baseline) and returns the top k.
func baselineSummary(inner *core.System, text string, k int) []string {
	vec := inner.Baseline.ConceptVector(text).Map()
	seen := make(map[string]bool)
	type scored struct {
		name string
		w    float64
	}
	var candidates []scored
	for _, d := range inner.Pipeline.Detect(text) {
		if d.Kind == detect.KindPattern || seen[d.Norm] {
			continue
		}
		seen[d.Norm] = true
		candidates = append(candidates, scored{name: d.Norm, w: vec[d.Norm]})
	}
	sort.Slice(candidates, func(i, j int) bool {
		if candidates[i].w != candidates[j].w {
			return candidates[i].w > candidates[j].w
		}
		return candidates[i].name < candidates[j].name
	})
	out := make([]string, 0, k)
	for i := 0; i < k && i < len(candidates); i++ {
		out = append(out, candidates[i].name)
	}
	return out
}
