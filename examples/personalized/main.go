// Personalized: the paper's §IV-C personalization direction. A logged-in
// reader's click history reveals their topic and entity-type preferences;
// the ranker's global scores are re-ranked per user, and cold users borrow
// from similar readers via collaborative filtering.
package main

import (
	"flag"
	"fmt"
	"math"
	"math/rand"

	"contextrank"
	"contextrank/internal/personal"
	"contextrank/internal/world"
)

func main() {
	seed := flag.Int64("seed", 42, "base seed; user generation and click rngs use fixed offsets of it")
	flag.Parse()

	sys := contextrank.Build(contextrank.SmallConfig(*seed))
	w := sys.Internal().World

	// A small population of readers with latent preferences, plus their
	// observed click histories.
	users := personal.GenerateUsers(8, w.Config.NumTopics, *seed+7)
	// User 7 happens to share user 0's tastes — the situation collaborative
	// filtering exploits: somebody like you has a long history even if you
	// do not.
	users[7].TopicAffinity = append([]float64(nil), users[0].TopicAffinity...)
	users[7].TypeAffinity = users[0].TypeAffinity

	community := &personal.Community{}
	rng := rand.New(rand.NewSource(*seed + 9))
	base := 0.04
	for i := range users {
		p := personal.NewProfile(w.Config.NumTopics)
		n := 15000
		if i == 0 {
			n = 2000 // user 0 is new: some history, thin per topic
		}
		for k := 0; k < n; k++ {
			c := &w.Concepts[rng.Intn(len(w.Concepts))]
			ctr := base * users[i].CTRFactor(c)
			p.Observe(c, rng.Float64() < math.Min(ctr, 0.9))
		}
		community.Profiles = append(community.Profiles, p)
	}

	// Evaluate pairwise accuracy of three rankers for user 1 (an
	// established reader): global interest only, personalized, and the
	// CF-blended variant for the cold user 0.
	evalUser := func(userIdx int, affinity func(*world.Concept) float64) float64 {
		correct, total := 0, 0
		r := rand.New(rand.NewSource(*seed + 11))
		for t := 0; t < 600; t++ {
			a := &w.Concepts[r.Intn(len(w.Concepts))]
			b := &w.Concepts[r.Intn(len(w.Concepts))]
			truthA := a.Interest * users[userIdx].CTRFactor(a)
			truthB := b.Interest * users[userIdx].CTRFactor(b)
			if a == b || truthA == truthB {
				continue
			}
			scoreA := math.Log(a.Interest+0.01) + math.Log(affinity(a))
			scoreB := math.Log(b.Interest+0.01) + math.Log(affinity(b))
			total++
			if (scoreA > scoreB) == (truthA > truthB) {
				correct++
			}
		}
		return float64(correct) / float64(total)
	}

	flat := func(*world.Concept) float64 { return 1 }
	fmt.Println("pairwise ranking accuracy against each user's true click preferences:")
	fmt.Printf("  established reader, global ranking only:   %.3f\n", evalUser(1, flat))
	fmt.Printf("  established reader, + own profile:          %.3f\n",
		evalUser(1, community.Profiles[1].Affinity))
	fmt.Printf("  new reader, global ranking only:            %.3f\n", evalUser(0, flat))
	fmt.Printf("  new reader, + own thin profile:             %.3f\n",
		evalUser(0, community.Profiles[0].Affinity))
	fmt.Printf("  new reader, + collaborative filtering:      %.3f\n",
		evalUser(0, func(c *world.Concept) float64 { return community.BlendedAffinity(0, 1, c) }))

	neighbors := community.Neighbors(1, 2)
	fmt.Printf("\nreader 1's nearest taste neighbors: users %v\n", neighbors)
}
