// Newsroom: the paper's production scenario (§III, §V-C). News stories are
// annotated with contextual shortcuts; the learned ranker picks the top-3
// entities per story instead of annotating everything, which in the paper
// halved views while keeping clicks — doubling CTR.
//
// The example compares the baseline (annotate all detected entities, ranked
// by concept-vector score) with the learned ranker on fresh stories, and
// simulates a week of reader traffic over both.
package main

import (
	"fmt"
	"log"

	"contextrank"
	"contextrank/internal/core"
	"contextrank/internal/newsgen"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
)

func main() {
	sys := contextrank.Build(contextrank.SmallConfig(42))
	inner := sys.Internal()

	// Train the combined model on the click corpus.
	learned := &core.LearnedMethod{
		UseRelevance: true,
		Resource:     relevance.Snippets,
		Options:      ranksvm.Options{Seed: 42},
	}
	if err := learned.Fit(inner.Dataset([]relevance.Resource{relevance.Snippets})); err != nil {
		log.Fatal(err)
	}
	baseline := &core.ConceptVectorMethod{Scorer: inner.Baseline}

	// Fresh stories the model has never seen.
	stories := newsgen.Generate(inner.World, newsgen.Config{Seed: 4242, NumStories: 5})

	for si := range stories {
		story := &stories[si]
		g := inner.GroupFromStory(story, []relevance.Resource{relevance.Snippets})
		fmt.Printf("story %d (%d bytes, %d candidate entities)\n", story.ID, len(story.Text), len(g.Examples))
		printTop("  baseline top-3:", &g, baseline.Score(&g))
		printTop("  learned  top-3:", &g, learned.Score(&g))
		fmt.Println()
	}

	// Simulated production A/B over a week of traffic (paper §V-C:
	// views −52.5%, clicks −2.0%, CTR +100.1%).
	prod, err := inner.ProductionExperiment(3, 300, 99)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("one week of traffic, annotate-all vs learned top-3:\n")
	fmt.Printf("  views  %+0.1f%%   clicks %+0.1f%%   CTR %+0.1f%%\n",
		prod.ViewsChangePct(), prod.ClicksChangePct(), prod.CTRChangePct())
}

func printTop(label string, g *core.Group, scores []float64) {
	fmt.Println(label)
	order := make([]int, len(scores))
	for i := range order {
		order[i] = i
	}
	for i := 0; i < len(order); i++ {
		for j := i + 1; j < len(order); j++ {
			if scores[order[j]] > scores[order[i]] {
				order[i], order[j] = order[j], order[i]
			}
		}
	}
	for k := 0; k < 3 && k < len(order); k++ {
		ex := g.Examples[order[k]]
		truth := "irrelevant aside"
		if ex.Concept.LowQuality() {
			truth = "low-quality phrase"
		} else if ex.Relevant {
			truth = fmt.Sprintf("relevant (degree %.2f)", ex.Degree)
		}
		fmt.Printf("    %-32q interest=%.2f  %s\n", ex.Concept.Name, ex.Concept.Interest, truth)
	}
}
