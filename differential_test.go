package contextrank

// The detection-hot-path differential: the trie-matcher pipeline and the
// annotation cache must produce bit-identical serving responses regardless
// of how many workers built the offline artifacts. Any worker-count
// dependence in vocabulary interning, trie compilation, or pack building —
// and any cache bug that serves stale or re-encoded bytes — shows up as a
// byte diff here.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"contextrank/internal/annotate"
	"contextrank/internal/core"
	"contextrank/internal/features"
	"contextrank/internal/framework"
	"contextrank/internal/newsgen"
	"contextrank/internal/ranksvm"
	"contextrank/internal/relevance"
	"contextrank/internal/serve"
)

// buildAnnotateStack assembles the full serving stack (runtime + cache +
// HTTP surface) from a system built with the given worker count.
func buildAnnotateStack(t *testing.T, workers int) (*serve.Server, []newsgen.Story) {
	t.Helper()
	cfg := SmallConfig(42)
	cfg.Workers = workers
	sys := Build(cfg)
	s := sys.Internal()
	learned := &core.LearnedMethod{UseRelevance: true, Resource: relevance.Snippets, Options: ranksvm.Options{Seed: 42}}
	if err := learned.Fit(s.Dataset([]relevance.Resource{relevance.Snippets})); err != nil {
		t.Fatal(err)
	}
	names := make([]string, len(s.World.Concepts))
	for i := range s.World.Concepts {
		names[i] = s.World.Concepts[i].Name
	}
	table := framework.BuildInterestTable(names, func(n string) features.Fields { return s.Fields(n) })
	packs := framework.BuildKeywordPacks(s.RelevanceStore(relevance.Snippets))
	rt := framework.NewRuntime(s.Pipeline, table, packs, learned.Model())
	srv := serve.NewServer(rt, annotate.NewRenderer(&annotate.DefaultProvider{}))
	srv.Cache = serve.NewCache(256)
	docs := newsgen.Generate(s.World, newsgen.Config{Seed: 4242, NumStories: 12, MinSentences: 8, MaxSentences: 16})
	return srv, docs
}

func postAnnotate(t *testing.T, h http.Handler, text string) []byte {
	t.Helper()
	payload, err := json.Marshal(serve.AnnotateRequest{Text: text, Top: 3})
	if err != nil {
		t.Fatal(err)
	}
	req := httptest.NewRequest(http.MethodPost, "/v1/annotate", bytes.NewReader(payload))
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != http.StatusOK {
		t.Fatalf("status %d: %s", rec.Code, rec.Body)
	}
	return rec.Body.Bytes()
}

func TestAnnotateResponsesEqualAcrossWorkers(t *testing.T) {
	if testing.Short() {
		t.Skip("builds three systems; skipped in -short")
	}
	var ref [][]byte
	var refWorkers int
	for _, workers := range []int{1, 4, 0} {
		srv, docs := buildAnnotateStack(t, workers)
		h := srv.Handler()
		bodies := make([][]byte, len(docs))
		for i, d := range docs {
			cold := postAnnotate(t, h, d.Text)
			hit := postAnnotate(t, h, d.Text)
			if !bytes.Equal(cold, hit) {
				t.Fatalf("workers=%d story %d: cache hit differs from cold response:\ncold %s\nhit  %s", workers, d.ID, cold, hit)
			}
			bodies[i] = cold
		}
		if st := srv.Cache.Stats(); st.Hits != int64(len(docs)) {
			t.Fatalf("workers=%d: expected %d cache hits, got %+v", workers, len(docs), st)
		}
		if ref == nil {
			ref, refWorkers = bodies, workers
			continue
		}
		for i := range bodies {
			if !bytes.Equal(bodies[i], ref[i]) {
				t.Fatalf("story %d: workers=%d response differs from workers=%d:\n%s\nvs\n%s",
					docs[i].ID, workers, refWorkers, bodies[i], ref[i])
			}
		}
	}
}
