package contextrank

import (
	"bytes"
	"math/rand"
	"strings"
	"testing"

	"contextrank/internal/detect"
	"contextrank/internal/world"
)

var (
	sharedSystem *System
	sharedRanker *Ranker
)

func testSystem(t testing.TB) (*System, *Ranker) {
	t.Helper()
	if sharedSystem == nil {
		sharedSystem = Build(SmallConfig(77))
		r, err := sharedSystem.TrainRanker()
		if err != nil {
			t.Fatal(err)
		}
		sharedRanker = r
	}
	return sharedSystem, sharedRanker
}

func composeTestDoc(s *System, seed int64) string {
	w := s.Internal().World
	rng := rand.New(rand.NewSource(seed))
	var hot, cold *world.Concept
	for i := range w.Concepts {
		c := &w.Concepts[i]
		if c.Topic < 0 {
			continue
		}
		if hot == nil || c.Interest > hot.Interest {
			if cold == nil {
				cold = hot
			}
			hot = c
		}
		if cold == nil || (c.Interest < cold.Interest && c.ID != hot.ID) {
			cold = c
		}
	}
	doc, _ := w.ComposeDoc(world.ComposeOptions{Topic: hot.Topic, Sentences: 14},
		[]world.Mention{
			{Concept: hot, Relevant: hot.Topic >= 0, Repeat: 2},
			{Concept: cold, Relevant: false},
		}, rng)
	return doc + " Contact press@example.com for details."
}

func TestBuildAndStats(t *testing.T) {
	s, _ := testSystem(t)
	if len(s.Concepts()) == 0 {
		t.Fatal("no concepts")
	}
	stats := s.DataStats()
	if stats.CleanStories == 0 || stats.Clicks == 0 || stats.Windows == 0 {
		t.Fatalf("empty click corpus: %+v", stats)
	}
}

func TestAnnotateRanksAndIncludesPatterns(t *testing.T) {
	s, r := testSystem(t)
	doc := composeTestDoc(s, 5)
	anns := r.Annotate(doc, 3)
	if len(anns) == 0 {
		t.Fatal("no annotations")
	}
	patterns := 0
	distinct := make(map[string]bool)
	for _, a := range anns {
		if a.Detection.Kind == detect.KindPattern {
			patterns++
		} else {
			distinct[a.Detection.Norm] = true
		}
	}
	if patterns == 0 {
		t.Fatal("email pattern not annotated")
	}
	if len(distinct) == 0 {
		t.Fatal("no ranked concepts")
	}
	if len(distinct) > 3 {
		t.Fatalf("topN not applied: %d distinct concepts", len(distinct))
	}
}

func TestKeywords(t *testing.T) {
	s, r := testSystem(t)
	doc := composeTestDoc(s, 6)
	kws := r.Keywords(doc, 3)
	if len(kws) == 0 {
		t.Fatal("no keywords")
	}
	for _, k := range kws {
		if strings.Contains(k, "@") {
			t.Fatalf("pattern leaked into keywords: %q", k)
		}
	}
}

func TestSaveLoadModel(t *testing.T) {
	s, r := testSystem(t)
	var buf bytes.Buffer
	if err := r.SaveModel(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := s.LoadRanker(&buf)
	if err != nil {
		t.Fatal(err)
	}
	doc := composeTestDoc(s, 7)
	a1, a2 := r.Annotate(doc, 5), r2.Annotate(doc, 5)
	if len(a1) != len(a2) {
		t.Fatal("loaded ranker disagrees on annotation count")
	}
	for i := range a1 {
		if a1[i].Detection.Norm != a2[i].Detection.Norm {
			t.Fatal("loaded ranker produces different ranking")
		}
	}
}

func TestMemoryFootprint(t *testing.T) {
	s, r := testSystem(t)
	interest, keywords := r.MemoryFootprint()
	n := len(s.Concepts())
	if interest != n*18 {
		t.Fatalf("interest bytes = %d, want %d (18/concept)", interest, n*18)
	}
	if keywords == 0 || keywords > n*400 {
		t.Fatalf("keyword bytes = %d out of range (max %d)", keywords, n*400)
	}
}

func TestThroughputMeasured(t *testing.T) {
	s, r := testSystem(t)
	r.Annotate(composeTestDoc(s, 8), 0)
	stem, rank := r.Throughput()
	if stem <= 0 || rank <= 0 {
		t.Fatalf("throughput = %v, %v", stem, rank)
	}
}

func TestSaveLoadBundle(t *testing.T) {
	s, r := testSystem(t)
	var buf bytes.Buffer
	if err := r.SaveBundle(&buf); err != nil {
		t.Fatal(err)
	}
	r2, err := s.LoadBundle(&buf)
	if err != nil {
		t.Fatal(err)
	}
	doc := composeTestDoc(s, 21)
	a1, a2 := r.Annotate(doc, 4), r2.Annotate(doc, 4)
	if len(a1) != len(a2) {
		t.Fatalf("bundle-restored ranker annotation count %d != %d", len(a2), len(a1))
	}
	for i := range a1 {
		if a1[i].Detection.Norm != a2[i].Detection.Norm || a1[i].Score != a2[i].Score {
			t.Fatal("bundle-restored ranker disagrees")
		}
	}
}
