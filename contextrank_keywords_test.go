package contextrank

import "testing"

func TestKeywordsLimit(t *testing.T) {
	s, r := testSystem(t)
	doc := composeTestDoc(s, 11)
	kws := r.Keywords(doc, 3)
	if len(kws) > 3 {
		t.Fatalf("Keywords returned %d items: %v", len(kws), kws)
	}
	seen := map[string]bool{}
	for _, k := range kws {
		if seen[k] {
			t.Fatalf("duplicate keyword %q", k)
		}
		seen[k] = true
	}
}
